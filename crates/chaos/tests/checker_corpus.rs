//! Adversarial corpus for the serializability checker.
//!
//! The checker is the harness's oracle: if it silently accepted a broken
//! history, every chaos sweep would be meaningless. This corpus feeds it a
//! table of hand-crafted *non-serializable* histories — the classical
//! anomaly zoo (lost update, write skew, wr/ww/rw cycles, stale reads,
//! phantom versions from reverted epochs) — and asserts each one is
//! rejected with the right violation class, plus positive controls proving
//! the corpus is not trivially red.
//!
//! The byzantine section extends the corpus below the history layer: a
//! bit-flipped committed value in the replication stream, a replication
//! batch carrying a wrong version, and a truncated final WAL record — each
//! a corruption the *recorded history* cannot show, so the replica
//! comparison, the oracle comparison or the disk recovery must flag it.

use star_chaos::checker::{check_history, compare_with_database, Violation};
use star_chaos::{run_plan, ChaosPlan, FaultOp, FaultSchedule, InjectionPoint, WorkloadSpec};
use star_common::row::row;
use star_common::{ClusterConfig, FieldValue, Key, Tid};
use star_core::history::{CommittedTxn, RecordedRead, RecordedWrite};
use star_replication::ExecutionPhase;
use std::time::Duration;

fn txn(tid: Tid, reads: Vec<(Key, Tid)>, writes: Vec<(Key, u64)>) -> CommittedTxn {
    CommittedTxn {
        epoch: tid.epoch(),
        phase: ExecutionPhase::Partitioned,
        executor: 0,
        tid,
        reads: reads
            .into_iter()
            .map(|(key, observed)| RecordedRead { table: 0, partition: 0, key, tid: observed })
            .collect(),
        writes: writes
            .into_iter()
            .map(|(key, value)| RecordedWrite {
                table: 0,
                partition: 0,
                key,
                row: row([FieldValue::U64(value)]),
            })
            .collect(),
    }
}

/// What the checker must decide for a corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expected {
    Serializable,
    Cycle,
    DanglingRead,
    DuplicateVersion,
}

fn corpus() -> Vec<(&'static str, Vec<CommittedTxn>, Expected)> {
    let t = |epoch: u32, seq: u64| Tid::new(epoch, seq);
    vec![
        // ---- positive controls -------------------------------------------------
        (
            "clean read-modify-write chain",
            vec![
                txn(t(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
                txn(t(1, 2), vec![(7, t(1, 1))], vec![(7, 2)]),
                txn(t(2, 1), vec![(7, t(1, 2))], vec![(7, 3)]),
            ],
            Expected::Serializable,
        ),
        (
            "blind writes in TID order",
            vec![
                txn(t(1, 1), vec![], vec![(1, 10)]),
                txn(t(1, 2), vec![], vec![(1, 20)]),
                txn(t(2, 1), vec![], vec![(2, 30)]),
            ],
            Expected::Serializable,
        ),
        (
            "read-only transaction against a settled record",
            vec![
                txn(t(1, 1), vec![(4, Tid::ZERO)], vec![(4, 1)]),
                txn(t(2, 1), vec![(4, t(1, 1))], vec![]),
            ],
            Expected::Serializable,
        ),
        // ---- rw/rw: the classical lost update ---------------------------------
        (
            "lost update: both read the initial version, both overwrite",
            vec![
                txn(t(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
                txn(t(1, 2), vec![(7, Tid::ZERO)], vec![(7, 2)]),
            ],
            Expected::Cycle,
        ),
        // ---- rw/rw across two records: write skew ------------------------------
        (
            "write skew: each reads both records, each writes the other one",
            vec![
                txn(t(1, 1), vec![(1, Tid::ZERO), (2, Tid::ZERO)], vec![(1, 10)]),
                txn(t(1, 2), vec![(1, Tid::ZERO), (2, Tid::ZERO)], vec![(2, 20)]),
            ],
            Expected::Cycle,
        ),
        // ---- wr/wr: mutual observation ----------------------------------------
        (
            "wr cycle: each transaction reads the other's write",
            vec![
                txn(t(1, 1), vec![(2, t(1, 2))], vec![(1, 10)]),
                txn(t(1, 2), vec![(1, t(1, 1))], vec![(2, 20)]),
            ],
            Expected::Cycle,
        ),
        // ---- ww/rw: version order against an anti-dependency -------------------
        (
            "ww-rw cycle: overwriter of A read B before A's first writer wrote it",
            vec![
                // T1 (t1) writes A and B; T2 (t2) overwrites A but read B@0.
                // ww A: T1 → T2; rw B: T2 → T1.
                txn(t(1, 1), vec![], vec![(1, 10), (2, 11)]),
                txn(t(1, 2), vec![(2, Tid::ZERO)], vec![(1, 20)]),
            ],
            Expected::Cycle,
        ),
        // ---- three-transaction mixed cycle ------------------------------------
        (
            "wr chain closed by a high-TID read: T1→T2→T3→T1",
            vec![
                // T1 reads C@t3 (wr T3→T1), T2 reads A@t1 (wr T1→T2),
                // T3 reads B@t2 (wr T2→T3).
                txn(t(1, 1), vec![(3, t(3, 1))], vec![(1, 10)]),
                txn(t(2, 1), vec![(1, t(1, 1))], vec![(2, 20)]),
                txn(t(3, 1), vec![(2, t(2, 1))], vec![(3, 30)]),
            ],
            Expected::Cycle,
        ),
        // ---- stale read overwritten (fractured read) ---------------------------
        (
            "stale read: observes v1 after v2 installed, then overwrites",
            vec![
                txn(t(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
                txn(t(2, 1), vec![(7, t(1, 1))], vec![(7, 2)]),
                txn(t(3, 1), vec![(7, t(1, 1))], vec![(7, 3)]),
            ],
            Expected::Cycle,
        ),
        // ---- phantom versions ---------------------------------------------------
        (
            "stale read after revert: observed version was never committed",
            vec![
                // Epoch 2 was reverted; its writes vanished from the
                // history, but a later transaction still saw one.
                txn(t(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
                txn(t(3, 1), vec![(7, t(2, 5))], vec![(7, 2)]),
            ],
            Expected::DanglingRead,
        ),
        (
            "read of a version from a transaction that never wrote that key",
            vec![
                txn(t(1, 1), vec![], vec![(1, 10)]),
                // t(1,1) wrote key 1, not key 2 — observing it on key 2 is
                // reading a version nobody installed there.
                txn(t(2, 1), vec![(2, t(1, 1))], vec![(2, 20)]),
            ],
            Expected::DanglingRead,
        ),
        // ---- TID uniqueness -----------------------------------------------------
        (
            "duplicate version: two transactions install the same TID",
            vec![
                txn(t(1, 1), vec![], vec![(1, 10)]),
                txn(t(1, 2), vec![], vec![(2, 20)]),
                txn(t(1, 1), vec![], vec![(1, 30)]),
            ],
            Expected::DuplicateVersion,
        ),
    ]
}

#[test]
fn corpus_verdicts_match() {
    for (name, history, expected) in corpus() {
        let report = check_history(&history);
        match expected {
            Expected::Serializable => {
                assert!(
                    report.is_serializable(),
                    "{name}: expected serializable, got {:?}",
                    report.violation
                );
                assert_eq!(report.serial_order.len(), history.len(), "{name}");
            }
            Expected::Cycle => {
                assert!(
                    matches!(report.violation, Some(Violation::Cycle { .. })),
                    "{name}: expected a cycle, got {:?}",
                    report.violation
                );
            }
            Expected::DanglingRead => {
                assert!(
                    matches!(report.violation, Some(Violation::DanglingRead { .. })),
                    "{name}: expected a dangling read, got {:?}",
                    report.violation
                );
            }
            Expected::DuplicateVersion => {
                assert!(
                    matches!(report.violation, Some(Violation::DuplicateVersion { .. })),
                    "{name}: expected a duplicate version, got {:?}",
                    report.violation
                );
            }
        }
    }
}

#[test]
fn cycle_diagnostics_name_the_involved_transactions() {
    // The lost-update entry involves exactly the two racing transactions;
    // the reporter prints their indices so a red seed is debuggable.
    let history = vec![
        txn(Tid::new(1, 1), vec![(7, Tid::ZERO)], vec![(7, 1)]),
        txn(Tid::new(1, 2), vec![(7, Tid::ZERO)], vec![(7, 2)]),
    ];
    let report = check_history(&history);
    let Some(Violation::Cycle { involved }) = &report.violation else {
        panic!("expected a cycle, got {:?}", report.violation);
    };
    assert_eq!(involved.as_slice(), &[0, 1]);
    let printed = report.violation.as_ref().unwrap().to_string();
    assert!(printed.contains("cycle"), "{printed}");
}

// ---------------------------------------------------------------------------
// Byzantine negative controls
// ---------------------------------------------------------------------------

fn byzantine_base_plan(seed: u64) -> ChaosPlan {
    let config = ClusterConfig::builder()
        .nodes(4)
        .full_replicas(1)
        .workers_per_node(1)
        .partitions(4)
        .iteration(Duration::from_millis(5))
        .network_latency(Duration::from_micros(20))
        .seed(seed)
        .build()
        .expect("byzantine control config is valid");
    ChaosPlan {
        seed,
        label: "byzantine-control".into(),
        config,
        workload: WorkloadSpec::Kv { rows_per_partition: 16 },
        iterations: 3,
        partitioned_txns: 12,
        single_master_txns: 16,
        schedule: FaultSchedule::new(),
        expect_disk_recovery: false,
    }
}

#[test]
fn bit_flipped_committed_value_is_flagged() {
    // The master's value-replication stream to node 1 is bit-flipped for
    // the final epoch (`FaultVerdict::Corrupt`). The recorded history is
    // untouched — the corruption lives only in replica state — so it is the
    // replica/oracle comparison that must go red.
    let mut plan = byzantine_base_plan(91);
    plan.label = "byzantine-bit-flip".into();
    plan.schedule = FaultSchedule::new()
        .at(
            2,
            InjectionPoint::SingleMasterStart,
            FaultOp::SetLinkFaults(0, 1, star_net::LinkFaults::corrupting(1.0)),
        )
        .at(
            2,
            InjectionPoint::BeforeSecondFence,
            FaultOp::SetLinkFaults(0, 1, star_net::LinkFaults::none()),
        );
    let outcome = run_plan(&plan).unwrap();
    assert!(!outcome.passed(), "a bit-flipped committed value survived to a green verdict");
    assert!(
        outcome.violations.iter().any(|v| v.contains("replica") || v.contains("oracle")),
        "the corruption must surface as replica/oracle divergence: {:?}",
        outcome.violations
    );
    // Positive control: the identical plan without the corrupt faults is
    // green, so the red verdict above is the corruption's doing.
    let clean = byzantine_base_plan(91);
    let outcome = run_plan(&clean).unwrap();
    assert!(outcome.passed(), "{:?}", outcome.violations);
}

#[test]
fn replication_batch_with_wrong_version_is_flagged() {
    // A byzantine replica applies a batch whose TID lies about the version
    // it installs: the record ends up at a version no committed transaction
    // produced. The oracle comparison must refuse it.
    let plan = byzantine_base_plan(92);
    let outcome = run_plan(&plan).unwrap();
    assert!(outcome.passed());

    // Rebuild a replica and the oracle state from a fresh run, then apply
    // the rogue batch entry to the replica.
    let workload = std::sync::Arc::new(star_core::testing::KvWorkload {
        partitions: 4,
        rows_per_partition: 16,
        cross_partition_fraction: 0.3,
    });
    let mut engine = star_core::StarEngine::new(plan.config.clone(), workload).unwrap();
    let recorder = std::sync::Arc::new(star_core::HistoryRecorder::new());
    engine.set_history_recorder(recorder.clone());
    for _ in 0..3 {
        engine.run_iteration_stepped(8, 8);
    }
    let report = check_history(&recorder.committed());
    assert!(report.is_serializable());
    let db = &engine.cluster().nodes()[0].db;
    assert!(compare_with_database(db, &report.final_state).is_ok());

    // Pick a record the oracle knows and install the same row under a
    // *wrong* (never-committed) version, as a corrupted batch would.
    let (&(table, partition, key), (tid, row)) =
        report.final_state.iter().next().expect("some record was written");
    let wrong_version = Tid::new(tid.epoch() + 900, 1);
    let rogue = star_replication::LogEntry {
        table,
        partition,
        key,
        tid: wrong_version,
        payload: star_replication::Payload::Value(row.clone()),
    };
    rogue.apply(db).unwrap();
    let err = compare_with_database(db, &report.final_state)
        .expect_err("a wrong-version record must fail the oracle comparison");
    assert!(err.contains("version"), "{err}");
}

#[test]
fn truncated_final_wal_record_is_flagged_by_disk_recovery() {
    // Case-4 total loss with a torn WAL tail: the checkpoint is captured,
    // every holder of partition 0 dies, and the full replica's WAL loses
    // its last 3 bytes (mid-record by construction — entries are ≥ 25
    // bytes). Disk recovery must refuse to replay the torn log.
    let mut plan = byzantine_base_plan(93);
    plan.label = "byzantine-torn-wal".into();
    plan.config.disk_logging = true;
    plan.expect_disk_recovery = true;
    plan.iterations = 4;
    plan.schedule = FaultSchedule::new()
        .at(2, InjectionPoint::PartitionedStart, FaultOp::Checkpoint)
        .at(2, InjectionPoint::MidPartitioned, FaultOp::Crash(0))
        .at(2, InjectionPoint::MidPartitioned, FaultOp::Crash(1))
        .at(2, InjectionPoint::IterationEnd, FaultOp::TruncateWal(0, 3));
    let outcome = run_plan(&plan).unwrap();
    assert!(!outcome.passed(), "a torn WAL record survived to a green verdict");
    assert!(
        outcome.violations.iter().any(|v| v.starts_with("disk recovery:")),
        "the tear must surface in disk recovery: {:?}",
        outcome.violations
    );
    // Positive control: the same total-loss plan with an intact WAL
    // recovers from checkpoint + logs cleanly.
    let mut clean = byzantine_base_plan(93);
    clean.config.disk_logging = true;
    clean.expect_disk_recovery = true;
    clean.iterations = 4;
    clean.schedule = FaultSchedule::new()
        .at(2, InjectionPoint::PartitionedStart, FaultOp::Checkpoint)
        .at(2, InjectionPoint::MidPartitioned, FaultOp::Crash(0))
        .at(2, InjectionPoint::MidPartitioned, FaultOp::Crash(1));
    let outcome = run_plan(&clean).unwrap();
    assert!(outcome.passed(), "{:?}", outcome.violations);
    assert!(outcome.disk_recovery.unwrap().records_verified > 0);
}

#[test]
fn every_non_serializable_entry_survives_shuffling() {
    // Violations are properties of the history *set*, not the recording
    // order: rotating each red corpus entry must not change the verdict
    // (the checker derives version order from TIDs, not positions).
    for (name, history, expected) in corpus() {
        if expected == Expected::Serializable || history.len() < 2 {
            continue;
        }
        for rotation in 1..history.len() {
            let mut rotated = history.clone();
            rotated.rotate_left(rotation);
            let report = check_history(&rotated);
            assert!(!report.is_serializable(), "{name}: rotation {rotation} was accepted");
        }
    }
}
