//! Exhaustive re-election edge-case table.
//!
//! The engine's master election must be boring: whatever instant the
//! coordinator dies at — any of the six crash points of the stepped
//! iteration — and however many full replicas die with it, the next fence
//! either elects a *deterministic* new master (the lowest-id healthy full
//! replica) or reports the infeasibility cleanly (no master, a classified
//! Case-2/Case-4 failure state, no panic). This table crosses every crash
//! timing with every surviving-full-replica count and pins both outcomes,
//! plus the determinism of the whole election log.

use star_common::{ClusterConfig, NodeId};
use star_core::engine::MasterElection;
use star_core::testing::KvWorkload;
use star_core::{FailureCase, StarEngine};
use std::sync::Arc;
use std::time::Duration;

/// Where, inside one stepped iteration, the coordinator crash lands — the
/// same six positions the chaos DSL can inject a crash at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashTiming {
    PartitionedStart,
    MidPartitioned,
    BeforeFirstFence,
    SingleMasterStart,
    MidSingleMaster,
    BeforeSecondFence,
}

const TIMINGS: [CrashTiming; 6] = [
    CrashTiming::PartitionedStart,
    CrashTiming::MidPartitioned,
    CrashTiming::BeforeFirstFence,
    CrashTiming::SingleMasterStart,
    CrashTiming::MidSingleMaster,
    CrashTiming::BeforeSecondFence,
];

fn build_engine(full_replicas: usize) -> StarEngine {
    let config = ClusterConfig::builder()
        .nodes(5)
        .full_replicas(full_replicas)
        .workers_per_node(1)
        .partitions(4)
        .iteration(Duration::from_millis(5))
        .network_latency(Duration::from_micros(20))
        .seed(7)
        .build()
        .unwrap();
    let workload = Arc::new(KvWorkload {
        partitions: 4,
        rows_per_partition: 16,
        cross_partition_fraction: 0.3,
    });
    StarEngine::new(config, workload).unwrap()
}

/// One stepped iteration with `victims` crashed at `timing`. Crash
/// *injection* is instantaneous; detection (and the election) happens at
/// the fence that closes the half-iteration the crash landed in.
fn run_iteration_with_crashes(engine: &mut StarEngine, timing: CrashTiming, victims: &[NodeId]) {
    let crash = |engine: &mut StarEngine| {
        for &victim in victims {
            engine.inject_failure(victim);
        }
    };
    if timing == CrashTiming::PartitionedStart {
        crash(engine);
    }
    engine.run_partitioned_phase_stepped(4);
    if timing == CrashTiming::MidPartitioned {
        crash(engine);
    }
    engine.run_partitioned_phase_stepped(4);
    if timing == CrashTiming::BeforeFirstFence {
        crash(engine);
    }
    engine.fence();
    if timing == CrashTiming::SingleMasterStart {
        crash(engine);
    }
    engine.run_single_master_phase_stepped(4);
    if timing == CrashTiming::MidSingleMaster {
        crash(engine);
    }
    engine.run_single_master_phase_stepped(4);
    if timing == CrashTiming::BeforeSecondFence {
        crash(engine);
    }
    engine.fence();
}

/// Runs one table cell and returns its election log.
fn run_cell(
    full_replicas: usize,
    crashed_fulls: usize,
    timing: CrashTiming,
) -> Vec<MasterElection> {
    let mut engine = build_engine(full_replicas);
    // A healthy warm-up iteration: no failures, so no re-election.
    engine.run_iteration_stepped(4, 4);
    assert_eq!(engine.master_generation(), 0, "a healthy iteration must not re-elect");

    let victims: Vec<NodeId> = (0..crashed_fulls).collect();
    run_iteration_with_crashes(&mut engine, timing, &victims);

    let expected_master = if crashed_fulls < full_replicas { Some(crashed_fulls) } else { None };
    assert_eq!(
        engine.current_master(),
        expected_master,
        "f={full_replicas} crashed={crashed_fulls} timing={timing:?}: the new master must be \
         the lowest-id healthy full replica"
    );
    assert_eq!(
        engine.master_generation(),
        1,
        "f={full_replicas} crashed={crashed_fulls} timing={timing:?}: one detection, one \
         election"
    );
    let election = *engine.elections().last().unwrap();
    assert_eq!(election.master, expected_master);
    assert_eq!(election.generation, 1);

    match expected_master {
        Some(master) => {
            // A deterministic new master that actually works: the next
            // iteration keeps committing under it.
            let committed = engine.run_single_master_phase_stepped(4);
            assert!(
                committed > 0,
                "f={full_replicas} crashed={crashed_fulls} timing={timing:?}: the re-elected \
                 master {master} must commit"
            );
        }
        None => {
            // A clean infeasibility report: no master, a classified
            // failure case, and the engine keeps running fences without
            // flip-flopping the election.
            let case = engine.failure_case().unwrap();
            assert!(
                matches!(case, FailureCase::OnlyPartialRemains | FailureCase::NothingRemains),
                "f={full_replicas} timing={timing:?}: losing every full replica must classify \
                 as Case 2 or Case 4, got {case:?}"
            );
            assert_eq!(engine.run_single_master_phase_stepped(4), 0);
            engine.run_iteration_stepped(4, 4);
            assert_eq!(engine.master_generation(), 1, "idle fences must not re-elect");
        }
    }
    engine.elections().to_vec()
}

#[test]
fn exhaustive_crash_timing_by_survivor_count_table() {
    for full_replicas in 1..=3usize {
        for crashed_fulls in 1..=full_replicas {
            for timing in TIMINGS {
                let first = run_cell(full_replicas, crashed_fulls, timing);
                // The whole election log — epochs, winners, generations —
                // must reproduce exactly.
                let second = run_cell(full_replicas, crashed_fulls, timing);
                assert_eq!(
                    first, second,
                    "f={full_replicas} crashed={crashed_fulls} timing={timing:?}: election \
                     log must be deterministic"
                );
            }
        }
    }
}

#[test]
fn master_bounces_back_after_recovery() {
    // A full re-election round trip: 0 dies (1 elected), 1 dies too (no
    // master), 0 recovers (0 re-elected) — generations strictly increase
    // and the log records every hop.
    let mut engine = build_engine(2);
    engine.run_iteration_stepped(4, 4);
    engine.inject_failure(0);
    engine.run_iteration_stepped(4, 4);
    assert_eq!(engine.current_master(), Some(1));
    engine.inject_failure(1);
    engine.run_iteration_stepped(4, 4);
    assert_eq!(engine.current_master(), None);
    engine.recover_node(0).unwrap();
    engine.run_iteration_stepped(4, 4);
    assert_eq!(engine.current_master(), Some(0));
    let masters: Vec<Option<NodeId>> = engine.elections().iter().map(|e| e.master).collect();
    assert_eq!(masters, vec![Some(0), Some(1), None, Some(0)]);
    let generations: Vec<u64> = engine.elections().iter().map(|e| e.generation).collect();
    assert_eq!(generations, vec![0, 1, 2, 3]);
    engine.verify_replica_consistency().unwrap();
}
