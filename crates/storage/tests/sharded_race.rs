//! Race tests for the sharded partition index: concurrent `insert_if_absent`
//! / `get` / `remove` traffic (deterministically seeded) must never lose a
//! record, duplicate a record, or leave the index's views of itself
//! (`len`, `keys`, `for_each`, `get`) disagreeing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use star_common::row::row;
use star_common::FieldValue;
use star_storage::{Partition, Record};
use std::collections::HashSet;
use std::sync::Arc;

const THREADS: u64 = 8;

fn value_row(v: u64) -> star_common::Row {
    row([FieldValue::U64(v)])
}

/// Every key is targeted by every thread; exactly one `insert_if_absent` may
/// win per key, and the record that all threads observe afterwards must be
/// the winner's.
#[test]
fn concurrent_insert_if_absent_has_exactly_one_winner_per_key() {
    let partition = Partition::new();
    let keys: u64 = 2_000;
    let winners: Vec<Vec<(u64, Arc<Record>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let partition = &partition;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xACE0 + t);
                    let mut won = Vec::new();
                    // Each thread visits the keys in its own random order so
                    // the insert races are spread across the whole keyspace.
                    let mut order: Vec<u64> = (0..keys).collect();
                    for i in (1..order.len()).rev() {
                        order.swap(i, rng.gen_range(0..=i));
                    }
                    for key in order {
                        let (rec, inserted) =
                            partition.insert_if_absent(key, Record::new(value_row(t)));
                        if inserted {
                            won.push((key, rec));
                        }
                    }
                    won
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("inserter panicked")).collect()
    });

    let total_wins: usize = winners.iter().map(Vec::len).sum();
    assert_eq!(total_wins, keys as usize, "every key must be inserted exactly once");
    assert_eq!(partition.len(), keys as usize);

    let mut seen = HashSet::new();
    for (key, rec) in winners.iter().flatten() {
        assert!(seen.insert(*key), "key {key} was inserted twice");
        let stored = partition.get(*key).expect("winner's key vanished");
        assert!(Arc::ptr_eq(&stored, rec), "stored record is not the winner's for key {key}");
    }
}

/// All threads `get_or_insert_with` the same keys; for each key every thread
/// must end up holding the same record instance.
#[test]
fn get_or_insert_with_converges_on_a_single_record() {
    let partition = Partition::new();
    let keys: u64 = 1_000;
    let held: Vec<Vec<Arc<Record>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let partition = &partition;
                scope.spawn(move || {
                    (0..keys)
                        .map(|key| partition.get_or_insert_with(key, || Record::new(value_row(t))))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    assert_eq!(partition.len(), keys as usize);
    for key in 0..keys as usize {
        let reference = &held[0][key];
        for thread_held in &held {
            assert!(
                Arc::ptr_eq(&thread_held[key], reference),
                "threads disagree on the record for key {key}"
            );
        }
    }
}

/// Threads own disjoint key ranges and insert, overwrite, then remove a
/// deterministic subset; the final contents are exactly predictable, so a
/// single lost or resurrected record fails the test.
#[test]
fn disjoint_insert_remove_traffic_loses_nothing() {
    let partition = Partition::new();
    let per_thread: u64 = 3_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let partition = &partition;
            scope.spawn(move || {
                let base = t * per_thread;
                let mut rng = StdRng::seed_from_u64(0xD15C0 + t);
                for key in base..base + per_thread {
                    partition.insert(key, Record::new(value_row(key)));
                    // Interleave some reads of foreign ranges to keep the
                    // shard read path hot while other threads write.
                    if rng.gen_bool(0.25) {
                        let foreign = rng.gen_range(0..THREADS * per_thread);
                        let _ = partition.get(foreign);
                    }
                }
                // Remove every odd key of the owned range.
                for key in (base..base + per_thread).filter(|k| k % 2 == 1) {
                    assert!(partition.remove(key).is_some(), "own key {key} disappeared");
                }
            });
        }
    });

    let expected: usize = (THREADS * per_thread / 2) as usize;
    assert_eq!(partition.len(), expected, "even keys must all survive");
    for t in 0..THREADS {
        let base = t * per_thread;
        for key in base..base + per_thread {
            let stored = partition.get(key);
            if key % 2 == 0 {
                let rec = stored.unwrap_or_else(|| panic!("lost even key {key}"));
                assert_eq!(rec.read().row, value_row(key));
            } else {
                assert!(stored.is_none(), "odd key {key} was resurrected");
            }
        }
    }
}

/// Mixed random `insert_if_absent` / `get` / `remove` traffic over a shared
/// keyspace. After the storm the index's views must agree with each other:
/// `len()`, `keys()`, `for_each` and per-key `get` all describe the same set.
#[test]
fn random_mixed_traffic_leaves_index_views_consistent() {
    let partition = Partition::new();
    let keyspace: u64 = 4_096;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let partition = &partition;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5EED + t);
                for _ in 0..20_000 {
                    let key = rng.gen_range(0..keyspace);
                    match rng.gen_range(0..10) {
                        0..=4 => {
                            let _ = partition.get(key);
                        }
                        5..=7 => {
                            let _ = partition.insert_if_absent(key, Record::new(value_row(key)));
                        }
                        _ => {
                            let _ = partition.remove(key);
                        }
                    }
                }
            });
        }
    });

    let keys = partition.keys();
    assert_eq!(partition.len(), keys.len(), "len() and keys() disagree");
    let mut via_for_each = 0usize;
    partition.for_each(|key, rec| {
        via_for_each += 1;
        assert_eq!(rec.read().row, value_row(key), "record for {key} holds a foreign row");
    });
    assert_eq!(via_for_each, keys.len(), "for_each and keys() disagree");
    let mut unique = HashSet::new();
    for key in &keys {
        assert!(unique.insert(*key), "keys() reported {key} twice");
        assert!(partition.get(*key).is_some(), "keys() reported {key} but get() misses it");
    }
}

/// Readers hammer `get` while writers race `insert_if_absent` on the same
/// keys: a reader must only ever observe the single winning record.
#[test]
fn readers_never_observe_a_losing_record() {
    let partition = Arc::new(Partition::new());
    let keys: u64 = 256;
    let observed: Vec<Vec<Option<Arc<Record>>>> = std::thread::scope(|scope| {
        let mut reader_handles = Vec::new();
        for t in 0..4u64 {
            let partition = Arc::clone(&partition);
            reader_handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF + t);
                let mut seen: Vec<Option<Arc<Record>>> = vec![None; keys as usize];
                for _ in 0..50_000 {
                    let key = rng.gen_range(0..keys);
                    if let Some(rec) = partition.get(key) {
                        seen[key as usize] = Some(rec);
                    }
                }
                seen
            }));
        }
        for t in 0..4u64 {
            let partition = Arc::clone(&partition);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xFEED + t);
                for _ in 0..keys * 4 {
                    let key = rng.gen_range(0..keys);
                    let _ = partition.insert_if_absent(key, Record::new(value_row(key)));
                }
            });
        }
        reader_handles.into_iter().map(|h| h.join().expect("reader panicked")).collect()
    });

    for seen in observed {
        for (key, rec) in seen.into_iter().enumerate() {
            if let Some(rec) = rec {
                let current = partition.get(key as u64).expect("inserted key vanished");
                assert!(
                    Arc::ptr_eq(&rec, &current),
                    "reader observed a record for key {key} that lost the insert race"
                );
            }
        }
    }
}
