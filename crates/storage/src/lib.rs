//! Partitioned in-memory storage for the STAR reproduction.
//!
//! Tables are collections of hash tables, as in the paper (Section 3): each
//! table has one primary hash table per partition plus optional secondary
//! indexes. Partition indexes are lock-striped ([`table::Partition`]): point
//! operations contend only per shard, and scans (checkpointer, recovery,
//! epoch maintenance) walk one shard at a time instead of freezing a whole
//! partition. Every record carries
//!
//! * an atomic *meta word* packing the TID of the last writer and a lock bit
//!   (the Silo layout), used by the OCC protocol and by the Thomas write rule;
//! * the row data;
//! * an optional *stable version* — the most recent version from an earlier
//!   epoch, kept so that the database can be reverted to the last committed
//!   epoch when a failure is detected (Section 4.5.2, Figure 6).
//!
//! A [`Database`] is one replica: the full-replica nodes hold every partition,
//! partial-replica nodes hold a subset. Which partitions a database holds is
//! fixed at construction time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod database;
pub mod record;
pub mod table;

pub use database::{Database, DatabaseBuilder, TableSpec};
pub use record::{ReadResult, Record, RecordMeta};
pub use table::{FixedKeyHasher, FixedKeyState, Partition, SecondaryIndex, Table};
