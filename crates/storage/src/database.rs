//! The per-replica database: a catalog of tables over a fixed partition
//! layout, plus the subset of partitions this replica actually holds.

use crate::record::Record;
use crate::table::Table;
use star_common::{Epoch, Error, Key, PartitionId, Result, Row, TableId, Tid};
use std::sync::Arc;

/// Static description of one table in the catalog.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Human-readable table name.
    pub name: String,
    /// Number of secondary indexes to create.
    pub secondary_indexes: usize,
}

impl TableSpec {
    /// Creates a spec with no secondary indexes.
    pub fn new(name: impl Into<String>) -> Self {
        TableSpec { name: name.into(), secondary_indexes: 0 }
    }

    /// Creates a spec with `secondary_indexes` secondary indexes.
    pub fn with_secondary(name: impl Into<String>, secondary_indexes: usize) -> Self {
        TableSpec { name: name.into(), secondary_indexes }
    }
}

/// Builder for a [`Database`] replica.
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    tables: Vec<TableSpec>,
    partitions: usize,
    held: Option<Vec<PartitionId>>,
}

impl DatabaseBuilder {
    /// Starts a builder for a database with `partitions` partitions.
    pub fn new(partitions: usize) -> Self {
        DatabaseBuilder { tables: Vec::new(), partitions, held: None }
    }

    /// Adds a table to the catalog; tables are numbered in insertion order.
    pub fn table(mut self, spec: TableSpec) -> Self {
        self.tables.push(spec);
        self
    }

    /// Restricts the replica to holding only `partitions` (a partial
    /// replica). By default every partition is held (a full replica).
    pub fn holding(mut self, partitions: Vec<PartitionId>) -> Self {
        self.held = Some(partitions);
        self
    }

    /// Builds the database.
    pub fn build(self) -> Database {
        let mut held = vec![false; self.partitions];
        match &self.held {
            None => held.iter_mut().for_each(|h| *h = true),
            Some(ps) => {
                for &p in ps {
                    if p < self.partitions {
                        held[p] = true;
                    }
                }
            }
        }
        Database {
            tables: self
                .tables
                .into_iter()
                .map(|spec| Table::new(spec.name, self.partitions, spec.secondary_indexes))
                .collect(),
            partitions: self.partitions,
            held,
        }
    }
}

/// One replica of the database.
///
/// All replicas share the same catalog and partition count; they differ only
/// in which partitions they hold. Probing a partition that is not held
/// returns [`Error::NoSuchPartition`], which is how the engine catches layout
/// bugs (e.g. routing a single-partition transaction to the wrong node).
#[derive(Debug)]
pub struct Database {
    tables: Vec<Table>,
    partitions: usize,
    held: Vec<bool>,
}

impl Database {
    /// Number of partitions in the layout (not the number held).
    pub fn num_partitions(&self) -> usize {
        self.partitions
    }

    /// Number of tables in the catalog.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Whether this replica holds `partition`.
    pub fn holds(&self, partition: PartitionId) -> bool {
        self.held.get(partition).copied().unwrap_or(false)
    }

    /// The partitions this replica holds.
    pub fn held_partitions(&self) -> Vec<PartitionId> {
        self.held.iter().enumerate().filter(|(_, h)| **h).map(|(p, _)| p).collect()
    }

    /// Whether this replica holds every partition (is a full replica).
    pub fn is_full_replica(&self) -> bool {
        self.held.iter().all(|h| *h)
    }

    /// Marks a partition as held (used when re-mastering partitions onto a
    /// full replica during recovery Case 3, or when a recovered node has
    /// finished copying data).
    pub fn acquire_partition(&mut self, partition: PartitionId) -> Result<()> {
        if partition >= self.partitions {
            return Err(Error::NoSuchPartition(partition));
        }
        self.held[partition] = true;
        Ok(())
    }

    /// Borrow a table by id.
    pub fn table(&self, table: TableId) -> Result<&Table> {
        self.tables.get(table as usize).ok_or(Error::NoSuchTable(table))
    }

    /// Looks up a table by name (loaders, tests).
    pub fn table_by_name(&self, name: &str) -> Option<(TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .find(|(_, t)| t.name() == name)
            .map(|(id, t)| (id as TableId, t))
    }

    fn check_partition(&self, partition: PartitionId) -> Result<()> {
        if partition >= self.partitions || !self.held[partition] {
            Err(Error::NoSuchPartition(partition))
        } else {
            Ok(())
        }
    }

    /// Point lookup of a record handle.
    pub fn get(&self, table: TableId, partition: PartitionId, key: Key) -> Result<Arc<Record>> {
        self.check_partition(partition)?;
        self.table(table)?.get(partition, key).ok_or(Error::KeyNotFound { table, key })
    }

    /// Point lookup that returns `None` rather than an error for a missing
    /// key (but still errors on a partition this replica does not hold).
    pub fn try_get(
        &self,
        table: TableId,
        partition: PartitionId,
        key: Key,
    ) -> Result<Option<Arc<Record>>> {
        self.check_partition(partition)?;
        Ok(self.table(table)?.get(partition, key))
    }

    /// Returns the record under `key`, creating it with `make` if absent.
    ///
    /// This is the hot path of OCC inserts: concurrent inserters of the same
    /// key race benignly inside the shard and converge on one record, and a
    /// key that already exists is resolved under a shard read lock without
    /// ever running `make`.
    pub fn get_or_insert_with(
        &self,
        table: TableId,
        partition: PartitionId,
        key: Key,
        make: impl FnOnce() -> Record,
    ) -> Result<Arc<Record>> {
        self.check_partition(partition)?;
        self.table(table)?
            .get_or_insert_with(partition, key, make)
            .ok_or(Error::NoSuchPartition(partition))
    }

    /// Inserts a freshly loaded row (TID zero).
    pub fn insert(
        &self,
        table: TableId,
        partition: PartitionId,
        key: Key,
        row: Row,
    ) -> Result<Arc<Record>> {
        self.check_partition(partition)?;
        self.table(table)?.insert(partition, key, row).ok_or(Error::NoSuchPartition(partition))
    }

    /// Inserts (or overwrites) a row carrying a TID — the path used by
    /// replication appliers and recovery replay for keys that do not exist
    /// yet on this replica.
    pub fn upsert_with_tid(
        &self,
        table: TableId,
        partition: PartitionId,
        key: Key,
        row: Row,
        tid: Tid,
    ) -> Result<Arc<Record>> {
        self.check_partition(partition)?;
        let t = self.table(table)?;
        if let Some(existing) = t.get(partition, key) {
            existing.apply_value_thomas(row, tid);
            Ok(existing)
        } else {
            t.insert_with_tid(partition, key, row, tid).ok_or(Error::NoSuchPartition(partition))
        }
    }

    /// Applies a replicated full-row write with the Thomas write rule,
    /// inserting the key if it does not exist. Returns `true` if the write
    /// was installed (i.e. it was not stale).
    pub fn apply_value_write(
        &self,
        table: TableId,
        partition: PartitionId,
        key: Key,
        row: Row,
        tid: Tid,
    ) -> Result<bool> {
        self.check_partition(partition)?;
        let t = self.table(table)?;
        if let Some(existing) = t.get(partition, key) {
            Ok(existing.apply_value_thomas(row, tid))
        } else {
            t.insert_with_tid(partition, key, row, tid).ok_or(Error::NoSuchPartition(partition))?;
            Ok(true)
        }
    }

    /// Reverts every held record written after `committed_epoch` to its
    /// stable version. Returns the number of reverted records.
    ///
    /// This is the failure path, so the full-replica walk is acceptable;
    /// the per-epoch commit needs no walk at all (version stashes are
    /// invalidated lazily by the epoch gate in `Record::revert_to_epoch`).
    pub fn revert_to_epoch(&self, committed_epoch: Epoch) -> usize {
        let mut reverted = 0;
        for table in &self.tables {
            for p in 0..self.partitions {
                if !self.held[p] {
                    continue;
                }
                if let Some(part) = table.partition(p) {
                    part.for_each(|_, rec| {
                        if rec.revert_to_epoch(committed_epoch) {
                            reverted += 1;
                        }
                    });
                }
            }
        }
        reverted
    }

    /// Runs `f` over every `(table, partition, key, record)` this replica
    /// holds. Used by the checkpointer and by recovery data copy. The walk is
    /// shard-wise: only one index shard's read lock is held at a time, so
    /// concurrent writers to the rest of the replica are never blocked for
    /// the duration of the scan.
    pub fn for_each_record(&self, mut f: impl FnMut(TableId, PartitionId, Key, &Arc<Record>)) {
        for (tid, table) in self.tables.iter().enumerate() {
            for p in 0..self.partitions {
                if !self.held[p] {
                    continue;
                }
                if let Some(part) = table.partition(p) {
                    part.for_each(|k, rec| f(tid as TableId, p, k, rec));
                }
            }
        }
    }

    /// Total number of records held by this replica. Computed from the
    /// per-shard map sizes without visiting any record.
    pub fn len(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                (0..self.partitions)
                    .filter(|p| self.held[*p])
                    .filter_map(|p| t.partition(p))
                    .map(|part| part.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether this replica holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::FieldValue;

    fn db(partitions: usize) -> Database {
        DatabaseBuilder::new(partitions)
            .table(TableSpec::new("a"))
            .table(TableSpec::with_secondary("b", 1))
            .build()
    }

    fn r(v: u64) -> Row {
        row([FieldValue::U64(v)])
    }

    #[test]
    fn full_replica_holds_everything() {
        let d = db(4);
        assert!(d.is_full_replica());
        assert_eq!(d.held_partitions(), vec![0, 1, 2, 3]);
        assert_eq!(d.num_tables(), 2);
        assert_eq!(d.num_partitions(), 4);
    }

    #[test]
    fn partial_replica_rejects_foreign_partitions() {
        let d = DatabaseBuilder::new(4).table(TableSpec::new("a")).holding(vec![1, 3]).build();
        assert!(!d.is_full_replica());
        assert!(d.holds(1) && d.holds(3));
        assert!(!d.holds(0));
        assert!(d.insert(0, 1, 5, r(5)).is_ok());
        assert!(matches!(d.insert(0, 0, 5, r(5)), Err(Error::NoSuchPartition(0))));
        assert!(matches!(d.get(0, 2, 5), Err(Error::NoSuchPartition(2))));
    }

    #[test]
    fn insert_and_get_roundtrip() {
        let d = db(2);
        d.insert(0, 1, 42, r(7)).unwrap();
        let rec = d.get(0, 1, 42).unwrap();
        assert_eq!(rec.read().row, r(7));
        assert!(matches!(d.get(0, 1, 43), Err(Error::KeyNotFound { .. })));
        assert!(matches!(d.get(5, 1, 42), Err(Error::NoSuchTable(5))));
        assert!(d.try_get(0, 1, 43).unwrap().is_none());
    }

    #[test]
    fn table_by_name_lookup() {
        let d = db(2);
        assert_eq!(d.table_by_name("b").unwrap().0, 1);
        assert!(d.table_by_name("missing").is_none());
    }

    #[test]
    fn apply_value_write_upserts_and_respects_thomas() {
        let d = db(2);
        assert!(d.apply_value_write(0, 0, 9, r(1), Tid::new(1, 5)).unwrap());
        assert!(!d.apply_value_write(0, 0, 9, r(0), Tid::new(1, 3)).unwrap());
        assert!(d.apply_value_write(0, 0, 9, r(2), Tid::new(1, 9)).unwrap());
        assert_eq!(d.get(0, 0, 9).unwrap().read().row, r(2));
    }

    #[test]
    fn epoch_revert_across_database() {
        let d = db(2);
        d.insert(0, 0, 1, r(1)).unwrap();
        d.insert(0, 1, 2, r(2)).unwrap();
        // Epoch 1 commits (no explicit GC step: the stash invalidates lazily).
        d.apply_value_write(0, 0, 1, r(10), Tid::new(1, 1)).unwrap();
        // Epoch 2 writes both keys, then a failure occurs before the fence.
        d.apply_value_write(0, 0, 1, r(100), Tid::new(2, 1)).unwrap();
        d.apply_value_write(0, 1, 2, r(200), Tid::new(2, 2)).unwrap();
        let reverted = d.revert_to_epoch(1);
        assert_eq!(reverted, 2);
        assert_eq!(d.get(0, 0, 1).unwrap().read().row, r(10));
        assert_eq!(d.get(0, 1, 2).unwrap().read().row, r(2));
    }

    #[test]
    fn acquire_partition_extends_held_set() {
        let mut d = DatabaseBuilder::new(4).table(TableSpec::new("a")).holding(vec![0]).build();
        assert!(!d.holds(2));
        d.acquire_partition(2).unwrap();
        assert!(d.holds(2));
        assert!(d.acquire_partition(9).is_err());
    }

    #[test]
    fn for_each_record_covers_held_partitions_only() {
        let d = DatabaseBuilder::new(4).table(TableSpec::new("a")).holding(vec![0, 1]).build();
        d.insert(0, 0, 1, r(1)).unwrap();
        d.insert(0, 1, 2, r(2)).unwrap();
        let mut seen = Vec::new();
        d.for_each_record(|t, p, k, _| seen.push((t, p, k)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 0, 1), (0, 1, 2)]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }
}
