//! Tables, partitions and secondary indexes.
//!
//! The primary index of a partition is *lock-striped*: records are spread
//! over a fixed number of shards (chosen from the machine's available
//! parallelism at first use), each shard being an independently locked hash
//! table. Point operations only contend when they land on the same shard, so
//! the partitioned phase — where several partition workers plus the
//! replication appliers and the checkpointer touch the same `Database` —
//! never serialises behind a single partition-wide lock. Keys are routed to
//! shards with a Fibonacci multiplicative hash, and the per-shard maps use
//! the same cheap hash instead of the default SipHash: keys are internal
//! 64-bit integers produced by the workloads, not attacker-controlled input,
//! so HashDoS resistance buys nothing on this hot path.

use crate::record::Record;
use parking_lot::RwLock;
use star_common::{Key, PartitionId, Row, Tid};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::sync::OnceLock;

/// 2^64 / φ — the Fibonacci hashing constant. A single multiplication mixes
/// the low bits of sequential keys into the high bits, which both the shard
/// router and the per-shard maps consume.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A one-multiplication hasher for the `u64` keys of the storage layer.
///
/// `write_u64` is the only method the maps exercise on the hot path; the
/// byte-wise fallback exists so the type is a complete [`Hasher`].
#[derive(Debug, Default)]
pub struct FixedKeyHasher(u64);

impl Hasher for FixedKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FIB);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(FIB);
    }
}

/// [`std::hash::BuildHasher`] for [`FixedKeyHasher`].
pub type FixedKeyState = BuildHasherDefault<FixedKeyHasher>;

/// Routes a key to a shard: high bits of the Fibonacci product, masked to the
/// (power-of-two) shard count. The per-shard maps consume the *low* bits of
/// the same product, so router and map do not collide on the same bit range.
#[inline]
fn shard_of(key: Key, mask: usize) -> usize {
    ((key.wrapping_mul(FIB) >> 32) as usize) & mask
}

/// Default shard count: the machine's available parallelism, rounded up to a
/// power of two, floored at 8 (lock striping pays off even at low core counts
/// because the replication applier, checkpointer and workers interleave) and
/// capped at 64 to bound per-partition footprint.
fn default_shard_count() -> usize {
    static SHARDS: OnceLock<usize> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        threads.next_power_of_two().clamp(8, 64)
    })
}

/// One lock stripe of a partition, padded to a cache line so adjacent shard
/// locks do not false-share under concurrent updates.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard {
    records: RwLock<HashMap<Key, Arc<Record>, FixedKeyState>>,
}

/// One partition of a table: a sharded hash table from primary key to record.
///
/// Inserts and deletes take the *shard* write lock; point lookups clone an
/// `Arc<Record>` under the shard read lock and then operate on the record's
/// own synchronization, so no index lock is ever held across transaction
/// logic, and operations on different shards never contend.
#[derive(Debug)]
pub struct Partition {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; the shard count is always a power of two.
    mask: usize,
}

impl Default for Partition {
    fn default() -> Self {
        Self::new()
    }
}

impl Partition {
    /// Creates an empty partition with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// Creates an empty partition with an explicit shard count (rounded up to
    /// a power of two, minimum 1). `with_shards(1)` reproduces the pre-shard
    /// single-lock layout and is what the contention microbenchmark compares
    /// against.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Partition { shards: (0..n).map(|_| Shard::default()).collect(), mask: n - 1 }
    }

    /// Number of lock stripes in this partition.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard(&self, key: Key) -> &Shard {
        &self.shards[shard_of(key, self.mask)]
    }

    /// Number of records in the partition.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.records.read().len()).sum()
    }

    /// Whether the partition holds no records.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.records.read().is_empty())
    }

    /// Looks up a record by primary key.
    #[inline]
    pub fn get(&self, key: Key) -> Option<Arc<Record>> {
        self.shard(key).records.read().get(&key).cloned()
    }

    /// Inserts a record, replacing any previous record under the same key.
    /// Returns the inserted record handle.
    pub fn insert(&self, key: Key, record: Record) -> Arc<Record> {
        let rec = Arc::new(record);
        self.shard(key).records.write().insert(key, Arc::clone(&rec));
        rec
    }

    /// Inserts a record only if the key is not present; returns the record
    /// now stored under the key and whether an insert happened.
    pub fn insert_if_absent(&self, key: Key, record: Record) -> (Arc<Record>, bool) {
        self.get_or_insert_with_flag(key, move || record)
    }

    /// Returns the record under `key`, creating it with `make` if absent.
    ///
    /// This is the OCC insert path: most calls find the key already present,
    /// so the fast path is a shard *read* lock and never runs `make`. Only a
    /// miss upgrades to the shard write lock (re-checking under it, since a
    /// concurrent inserter may have won the race in between).
    #[inline]
    pub fn get_or_insert_with(&self, key: Key, make: impl FnOnce() -> Record) -> Arc<Record> {
        self.get_or_insert_with_flag(key, make).0
    }

    /// [`Self::get_or_insert_with`], also reporting whether an insert
    /// happened.
    pub fn get_or_insert_with_flag(
        &self,
        key: Key,
        make: impl FnOnce() -> Record,
    ) -> (Arc<Record>, bool) {
        let shard = self.shard(key);
        if let Some(rec) = shard.records.read().get(&key) {
            return (Arc::clone(rec), false);
        }
        let mut map = shard.records.write();
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let rec = Arc::new(make());
                e.insert(Arc::clone(&rec));
                (rec, true)
            }
        }
    }

    /// Removes a record.
    pub fn remove(&self, key: Key) -> Option<Arc<Record>> {
        self.shard(key).records.write().remove(&key)
    }

    /// Snapshot of the keys currently present, collected shard by shard so no
    /// single lock is held across the whole partition: the checkpointer can
    /// walk an arbitrarily large partition without ever blocking writers for
    /// more than one shard's worth of copying. The snapshot is fuzzy across
    /// shards — keys inserted into an already-visited shard during the walk
    /// are not reported.
    pub fn keys(&self) -> Vec<Key> {
        let mut keys = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            keys.extend(shard.records.read().keys().copied());
        }
        keys
    }

    /// Runs `f` for every `(key, record)` pair, one shard at a time. Only the
    /// current shard's read lock is held while `f` runs, so writers to other
    /// shards proceed concurrently; `f` must still not block on record locks
    /// held by writers that might insert into the shard being visited.
    pub fn for_each(&self, mut f: impl FnMut(Key, &Arc<Record>)) {
        for shard in self.shards.iter() {
            for (k, rec) in shard.records.read().iter() {
                f(*k, rec);
            }
        }
    }
}

/// One lock stripe of a secondary index: secondary key → primary keys.
type SecondaryShard = RwLock<HashMap<Key, Vec<Key>, FixedKeyState>>;

/// A secondary index mapping an encoded secondary key to the primary keys
/// that carry it (e.g. TPC-C customer last name → customer ids). Sharded the
/// same way as the primary index.
#[derive(Debug)]
pub struct SecondaryIndex {
    shards: Box<[SecondaryShard]>,
    mask: usize,
}

impl Default for SecondaryIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl SecondaryIndex {
    /// Creates an empty index with the default shard count.
    pub fn new() -> Self {
        let n = default_shard_count();
        SecondaryIndex { shards: (0..n).map(|_| RwLock::default()).collect(), mask: n - 1 }
    }

    #[inline]
    fn shard(&self, secondary: Key) -> &SecondaryShard {
        &self.shards[shard_of(secondary, self.mask)]
    }

    /// Adds a mapping from `secondary` to `primary`.
    pub fn insert(&self, secondary: Key, primary: Key) {
        self.shard(secondary).write().entry(secondary).or_default().push(primary);
    }

    /// All primary keys registered under `secondary` (empty if none).
    pub fn lookup(&self, secondary: Key) -> Vec<Key> {
        self.shard(secondary).read().get(&secondary).cloned().unwrap_or_default()
    }

    /// Removes one `secondary -> primary` mapping.
    pub fn remove(&self, secondary: Key, primary: Key) {
        let mut map = self.shard(secondary).write();
        if let Some(v) = map.get_mut(&secondary) {
            v.retain(|p| *p != primary);
            if v.is_empty() {
                map.remove(&secondary);
            }
        }
    }

    /// Number of distinct secondary keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }
}

/// A table: one primary hash table per partition plus named secondary
/// indexes.
#[derive(Debug)]
pub struct Table {
    name: String,
    partitions: Vec<Partition>,
    secondary: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates a table with `num_partitions` empty partitions and
    /// `num_secondary` secondary indexes.
    pub fn new(name: impl Into<String>, num_partitions: usize, num_secondary: usize) -> Self {
        Table {
            name: name.into(),
            partitions: (0..num_partitions).map(|_| Partition::new()).collect(),
            secondary: (0..num_secondary).map(|_| SecondaryIndex::new()).collect(),
        }
    }

    /// Table name (catalog label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Borrow a partition.
    #[inline]
    pub fn partition(&self, p: PartitionId) -> Option<&Partition> {
        self.partitions.get(p)
    }

    /// Borrow a secondary index by position.
    pub fn secondary_index(&self, idx: usize) -> Option<&SecondaryIndex> {
        self.secondary.get(idx)
    }

    /// Point lookup.
    #[inline]
    pub fn get(&self, p: PartitionId, key: Key) -> Option<Arc<Record>> {
        self.partitions.get(p).and_then(|part| part.get(key))
    }

    /// Returns the record under `key`, creating it with `make` if absent
    /// (the OCC insert path). `None` if the partition is out of range.
    pub fn get_or_insert_with(
        &self,
        p: PartitionId,
        key: Key,
        make: impl FnOnce() -> Record,
    ) -> Option<Arc<Record>> {
        self.partitions.get(p).map(|part| part.get_or_insert_with(key, make))
    }

    /// Inserts a freshly loaded row (TID zero).
    pub fn insert(&self, p: PartitionId, key: Key, row: Row) -> Option<Arc<Record>> {
        self.partitions.get(p).map(|part| part.insert(key, Record::new(row)))
    }

    /// Inserts a row that already carries a TID (replication / recovery).
    pub fn insert_with_tid(
        &self,
        p: PartitionId,
        key: Key,
        row: Row,
        tid: Tid,
    ) -> Option<Arc<Record>> {
        self.partitions.get(p).map(|part| part.insert(key, Record::with_tid(row, tid)))
    }

    /// Total number of records across all partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(Partition::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::FieldValue;

    fn r(v: u64) -> Row {
        row([FieldValue::U64(v)])
    }

    #[test]
    fn partition_insert_get_remove() {
        let p = Partition::new();
        assert!(p.is_empty());
        p.insert(1, Record::new(r(10)));
        p.insert(2, Record::new(r(20)));
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(1).unwrap().read().row, r(10));
        assert!(p.get(3).is_none());
        assert!(p.remove(1).is_some());
        assert!(p.get(1).is_none());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn insert_if_absent_does_not_overwrite() {
        let p = Partition::new();
        let (_, inserted) = p.insert_if_absent(1, Record::new(r(10)));
        assert!(inserted);
        let (rec, inserted) = p.insert_if_absent(1, Record::new(r(99)));
        assert!(!inserted);
        assert_eq!(rec.read().row, r(10));
    }

    #[test]
    fn get_or_insert_with_skips_constructor_on_hit() {
        let p = Partition::new();
        p.insert(7, Record::new(r(70)));
        let rec = p.get_or_insert_with(7, || unreachable!("constructor must not run on a hit"));
        assert_eq!(rec.read().row, r(70));
        let rec = p.get_or_insert_with(8, || Record::new(r(80)));
        assert_eq!(rec.read().row, r(80));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn shard_count_is_power_of_two_with_floor_of_one() {
        assert_eq!(Partition::with_shards(0).num_shards(), 1);
        assert_eq!(Partition::with_shards(1).num_shards(), 1);
        assert_eq!(Partition::with_shards(3).num_shards(), 4);
        assert_eq!(Partition::with_shards(16).num_shards(), 16);
        let default = Partition::new().num_shards();
        assert!(default.is_power_of_two());
        assert!((8..=64).contains(&default));
    }

    #[test]
    fn records_spread_across_shards() {
        let p = Partition::with_shards(8);
        for k in 0..1024u64 {
            p.insert(k, Record::new(r(k)));
        }
        assert_eq!(p.len(), 1024);
        // Fibonacci routing must not degenerate to a single shard for
        // sequential keys: every shard should hold a reasonable slice.
        let mut per_shard = vec![0usize; 8];
        for k in 0..1024u64 {
            per_shard[shard_of(k, 7)] += 1;
        }
        assert!(per_shard.iter().all(|&n| n > 0), "a shard got no keys: {per_shard:?}");
        assert!(per_shard.iter().all(|&n| n < 512), "routing is degenerate: {per_shard:?}");
    }

    #[test]
    fn partition_for_each_and_keys() {
        let p = Partition::new();
        for k in 0..5 {
            p.insert(k, Record::new(r(k)));
        }
        let mut keys = p.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
        let mut sum = 0;
        p.for_each(|_, rec| sum += rec.read().row.field(0).unwrap().as_u64().unwrap());
        assert_eq!(sum, 1 + 2 + 3 + 4);
    }

    #[test]
    fn single_shard_partition_matches_pre_shard_layout() {
        let p = Partition::with_shards(1);
        for k in 0..100u64 {
            p.insert(k, Record::new(r(k)));
        }
        assert_eq!(p.len(), 100);
        assert_eq!(p.num_shards(), 1);
        let mut keys = p.keys();
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn secondary_index_roundtrip() {
        let idx = SecondaryIndex::new();
        assert!(idx.is_empty());
        idx.insert(100, 1);
        idx.insert(100, 2);
        idx.insert(200, 3);
        assert_eq!(idx.lookup(100), vec![1, 2]);
        assert_eq!(idx.lookup(200), vec![3]);
        assert!(idx.lookup(300).is_empty());
        idx.remove(100, 1);
        assert_eq!(idx.lookup(100), vec![2]);
        idx.remove(200, 3);
        assert!(idx.lookup(200).is_empty());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn table_partitioned_access() {
        let t = Table::new("ycsb", 4, 1);
        assert_eq!(t.name(), "ycsb");
        assert_eq!(t.num_partitions(), 4);
        t.insert(0, 1, r(10));
        t.insert(3, 2, r(20));
        assert!(t.get(0, 1).is_some());
        assert!(t.get(1, 1).is_none());
        assert!(t.get(3, 2).is_some());
        assert!(t.get(7, 2).is_none(), "out-of-range partition yields None");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(t.secondary_index(0).is_some());
        assert!(t.secondary_index(1).is_none());
    }

    #[test]
    fn insert_with_tid_preserves_tid() {
        let t = Table::new("t", 1, 0);
        let rec = t.insert_with_tid(0, 7, r(7), Tid::new(3, 9)).unwrap();
        assert_eq!(rec.tid(), Tid::new(3, 9));
    }
}
