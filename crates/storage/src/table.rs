//! Tables, partitions and secondary indexes.

use crate::record::Record;
use parking_lot::RwLock;
use star_common::{Key, PartitionId, Row, Tid};
use std::collections::HashMap;
use std::sync::Arc;

/// One partition of a table: a hash table from primary key to record.
///
/// Inserts and deletes take the partition write lock; point lookups clone an
/// `Arc<Record>` under the read lock and then operate on the record's own
/// synchronization, so the partition lock is never held across transaction
/// logic.
#[derive(Debug, Default)]
pub struct Partition {
    records: RwLock<HashMap<Key, Arc<Record>>>,
}

impl Partition {
    /// Creates an empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records in the partition.
    pub fn len(&self) -> usize {
        self.records.read().len()
    }

    /// Whether the partition holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.read().is_empty()
    }

    /// Looks up a record by primary key.
    pub fn get(&self, key: Key) -> Option<Arc<Record>> {
        self.records.read().get(&key).cloned()
    }

    /// Inserts a record, replacing any previous record under the same key.
    /// Returns the inserted record handle.
    pub fn insert(&self, key: Key, record: Record) -> Arc<Record> {
        let rec = Arc::new(record);
        self.records.write().insert(key, Arc::clone(&rec));
        rec
    }

    /// Inserts a record only if the key is not present; returns the record
    /// now stored under the key and whether an insert happened.
    pub fn insert_if_absent(&self, key: Key, record: Record) -> (Arc<Record>, bool) {
        let mut map = self.records.write();
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let rec = Arc::new(record);
                e.insert(Arc::clone(&rec));
                (rec, true)
            }
        }
    }

    /// Removes a record.
    pub fn remove(&self, key: Key) -> Option<Arc<Record>> {
        self.records.write().remove(&key)
    }

    /// Iterates over a snapshot of the keys currently present. Used by the
    /// checkpointer and by recovery; not intended for the transaction path.
    pub fn keys(&self) -> Vec<Key> {
        self.records.read().keys().copied().collect()
    }

    /// Runs `f` for every `(key, record)` pair. The partition read lock is
    /// held for the duration, so `f` must not block on record locks held by
    /// writers that might insert into this partition.
    pub fn for_each(&self, mut f: impl FnMut(Key, &Arc<Record>)) {
        for (k, rec) in self.records.read().iter() {
            f(*k, rec);
        }
    }
}

/// A secondary index mapping an encoded secondary key to the primary keys
/// that carry it (e.g. TPC-C customer last name → customer ids).
#[derive(Debug, Default)]
pub struct SecondaryIndex {
    entries: RwLock<HashMap<Key, Vec<Key>>>,
}

impl SecondaryIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a mapping from `secondary` to `primary`.
    pub fn insert(&self, secondary: Key, primary: Key) {
        self.entries.write().entry(secondary).or_default().push(primary);
    }

    /// All primary keys registered under `secondary` (empty if none).
    pub fn lookup(&self, secondary: Key) -> Vec<Key> {
        self.entries.read().get(&secondary).cloned().unwrap_or_default()
    }

    /// Removes one `secondary -> primary` mapping.
    pub fn remove(&self, secondary: Key, primary: Key) {
        let mut map = self.entries.write();
        if let Some(v) = map.get_mut(&secondary) {
            v.retain(|p| *p != primary);
            if v.is_empty() {
                map.remove(&secondary);
            }
        }
    }

    /// Number of distinct secondary keys.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

/// A table: one primary hash table per partition plus named secondary
/// indexes.
#[derive(Debug)]
pub struct Table {
    name: String,
    partitions: Vec<Partition>,
    secondary: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates a table with `num_partitions` empty partitions and
    /// `num_secondary` secondary indexes.
    pub fn new(name: impl Into<String>, num_partitions: usize, num_secondary: usize) -> Self {
        Table {
            name: name.into(),
            partitions: (0..num_partitions).map(|_| Partition::new()).collect(),
            secondary: (0..num_secondary).map(|_| SecondaryIndex::new()).collect(),
        }
    }

    /// Table name (catalog label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Borrow a partition.
    pub fn partition(&self, p: PartitionId) -> Option<&Partition> {
        self.partitions.get(p)
    }

    /// Borrow a secondary index by position.
    pub fn secondary_index(&self, idx: usize) -> Option<&SecondaryIndex> {
        self.secondary.get(idx)
    }

    /// Point lookup.
    pub fn get(&self, p: PartitionId, key: Key) -> Option<Arc<Record>> {
        self.partitions.get(p).and_then(|part| part.get(key))
    }

    /// Inserts a freshly loaded row (TID zero).
    pub fn insert(&self, p: PartitionId, key: Key, row: Row) -> Option<Arc<Record>> {
        self.partitions.get(p).map(|part| part.insert(key, Record::new(row)))
    }

    /// Inserts a row that already carries a TID (replication / recovery).
    pub fn insert_with_tid(
        &self,
        p: PartitionId,
        key: Key,
        row: Row,
        tid: Tid,
    ) -> Option<Arc<Record>> {
        self.partitions.get(p).map(|part| part.insert(key, Record::with_tid(row, tid)))
    }

    /// Total number of records across all partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.partitions.iter().all(Partition::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::FieldValue;

    fn r(v: u64) -> Row {
        row([FieldValue::U64(v)])
    }

    #[test]
    fn partition_insert_get_remove() {
        let p = Partition::new();
        assert!(p.is_empty());
        p.insert(1, Record::new(r(10)));
        p.insert(2, Record::new(r(20)));
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(1).unwrap().read().row, r(10));
        assert!(p.get(3).is_none());
        assert!(p.remove(1).is_some());
        assert!(p.get(1).is_none());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn insert_if_absent_does_not_overwrite() {
        let p = Partition::new();
        let (_, inserted) = p.insert_if_absent(1, Record::new(r(10)));
        assert!(inserted);
        let (rec, inserted) = p.insert_if_absent(1, Record::new(r(99)));
        assert!(!inserted);
        assert_eq!(rec.read().row, r(10));
    }

    #[test]
    fn partition_for_each_and_keys() {
        let p = Partition::new();
        for k in 0..5 {
            p.insert(k, Record::new(r(k)));
        }
        let mut keys = p.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
        let mut sum = 0;
        p.for_each(|_, rec| sum += rec.read().row.field(0).unwrap().as_u64().unwrap());
        assert_eq!(sum, 1 + 2 + 3 + 4);
    }

    #[test]
    fn secondary_index_roundtrip() {
        let idx = SecondaryIndex::new();
        assert!(idx.is_empty());
        idx.insert(100, 1);
        idx.insert(100, 2);
        idx.insert(200, 3);
        assert_eq!(idx.lookup(100), vec![1, 2]);
        assert_eq!(idx.lookup(200), vec![3]);
        assert!(idx.lookup(300).is_empty());
        idx.remove(100, 1);
        assert_eq!(idx.lookup(100), vec![2]);
        idx.remove(200, 3);
        assert!(idx.lookup(200).is_empty());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn table_partitioned_access() {
        let t = Table::new("ycsb", 4, 1);
        assert_eq!(t.name(), "ycsb");
        assert_eq!(t.num_partitions(), 4);
        t.insert(0, 1, r(10));
        t.insert(3, 2, r(20));
        assert!(t.get(0, 1).is_some());
        assert!(t.get(1, 1).is_none());
        assert!(t.get(3, 2).is_some());
        assert!(t.get(7, 2).is_none(), "out-of-range partition yields None");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(t.secondary_index(0).is_some());
        assert!(t.secondary_index(1).is_none());
    }

    #[test]
    fn insert_with_tid_preserves_tid() {
        let t = Table::new("t", 1, 0);
        let rec = t.insert_with_tid(0, 7, r(7), Tid::new(3, 9)).unwrap();
        assert_eq!(rec.tid(), Tid::new(3, 9));
    }
}
