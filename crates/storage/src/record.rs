//! A single versioned record with a Silo-style meta word.

use parking_lot::{Mutex, RwLock};
use star_common::{Epoch, Row, Tid};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bit in the meta word marking the record as locked by a committing
/// transaction.
const LOCK_BIT: u64 = 1 << 63;

/// Spins before a waiter starts yielding its scheduler quantum.
const SPIN_LIMIT: u32 = 64;

/// Bounded spin-wait: the lock holder is usually mid-install for a few dozen
/// cycles, so the first iterations use the CPU spin hint; past [`SPIN_LIMIT`]
/// the waiter yields instead. Without the yield, an oversubscribed host (more
/// workers than cores) burns a full scheduler slice spinning on a lock whose
/// holder has been preempted — which inverts thread scaling.
#[inline]
fn spin_backoff(spins: &mut u32) {
    if *spins < SPIN_LIMIT {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Decoded view of a record's meta word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// TID of the last committed writer.
    pub tid: Tid,
    /// Whether the record is currently locked.
    pub locked: bool,
}

impl RecordMeta {
    fn from_word(word: u64) -> Self {
        RecordMeta { tid: Tid::from_raw(word & !LOCK_BIT), locked: word & LOCK_BIT != 0 }
    }
}

/// Result of an optimistic read: the row value and the TID it was read at.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadResult {
    /// Copy of the row at the time of the read.
    pub row: Row,
    /// TID of the version that was read.
    pub tid: Tid,
}

/// A record stored in a table partition.
///
/// The meta word uses bit 63 as the lock bit and the remaining bits as the
/// raw TID, which restricts epochs to 23 bits — ~8 million phase switches,
/// far more than any run performs.
#[derive(Debug)]
pub struct Record {
    meta: AtomicU64,
    data: RwLock<Row>,
    /// Most recent version from an epoch earlier than the current one, kept
    /// for epoch revert during recovery.
    ///
    /// The stash is invalidated *lazily*: once the record's current epoch
    /// has committed, [`Record::revert_to_epoch`] can never consult it again
    /// (the epoch gate fails), and the first write of any later epoch
    /// overwrites it with that epoch's pre-image. No fence-time clearing
    /// pass is needed — which is what keeps the replication fence O(1) in
    /// database size rather than a full-replica walk per epoch.
    stable: Mutex<Option<(Tid, Row)>>,
}

impl Record {
    /// Creates a record with an initial row, tagged [`Tid::ZERO`] (loaded
    /// data, never written by a transaction).
    pub fn new(row: Row) -> Self {
        Record {
            meta: AtomicU64::new(Tid::ZERO.raw()),
            data: RwLock::new(row),
            stable: Mutex::new(None),
        }
    }

    /// Creates a record that already carries a TID (used by recovery replay
    /// and by checkpoint loading).
    pub fn with_tid(row: Row, tid: Tid) -> Self {
        Record { meta: AtomicU64::new(tid.raw()), data: RwLock::new(row), stable: Mutex::new(None) }
    }

    /// Decoded meta word (TID + lock bit).
    pub fn meta(&self) -> RecordMeta {
        RecordMeta::from_word(self.meta.load(Ordering::Acquire))
    }

    /// TID of the last committed writer.
    pub fn tid(&self) -> Tid {
        self.meta().tid
    }

    /// Whether the record is currently locked by a committing transaction.
    pub fn is_locked(&self) -> bool {
        self.meta().locked
    }

    /// Optimistic, consistent read of the record (Silo's read protocol):
    /// re-reads the meta word after copying the data and retries if a
    /// concurrent writer was active.
    pub fn read(&self) -> ReadResult {
        let mut spins = 0;
        loop {
            let before = self.meta.load(Ordering::Acquire);
            if before & LOCK_BIT != 0 {
                spin_backoff(&mut spins);
                continue;
            }
            let row = self.data.read().clone();
            let after = self.meta.load(Ordering::Acquire);
            if before == after {
                return ReadResult { row, tid: Tid::from_raw(before) };
            }
        }
    }

    /// Reads the row without the consistency loop. Only safe when the caller
    /// knows there are no concurrent writers — i.e. the partitioned phase,
    /// where a partition is touched by exactly one worker thread.
    pub fn read_unsynchronized(&self) -> ReadResult {
        ReadResult { row: self.data.read().clone(), tid: self.tid() }
    }

    /// Attempts to acquire the commit lock. Returns `false` if the record is
    /// already locked.
    pub fn try_lock(&self) -> bool {
        let cur = self.meta.load(Ordering::Acquire);
        if cur & LOCK_BIT != 0 {
            return false;
        }
        self.meta.compare_exchange(cur, cur | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// Spins until the commit lock is acquired. Used by the single-master
    /// phase commit path after sorting the write set in a global order, which
    /// rules out deadlock.
    pub fn lock(&self) {
        let mut spins = 0;
        while !self.try_lock() {
            spin_backoff(&mut spins);
        }
    }

    /// Releases the commit lock without changing the TID (abort path).
    pub fn unlock(&self) {
        let cur = self.meta.load(Ordering::Acquire);
        debug_assert!(cur & LOCK_BIT != 0, "unlock of unlocked record");
        self.meta.store(cur & !LOCK_BIT, Ordering::Release);
    }

    /// Installs a new version and releases the lock. Must only be called
    /// while holding the commit lock.
    ///
    /// The previous version is stashed as the stable version if it belongs to
    /// an earlier epoch, so that a failure during the current epoch can be
    /// rolled back.
    pub fn write_and_unlock(&self, new_row: Row, new_tid: Tid) {
        let cur = self.meta.load(Ordering::Acquire);
        debug_assert!(cur & LOCK_BIT != 0, "write without lock");
        let old_tid = Tid::from_raw(cur & !LOCK_BIT);
        {
            let mut data = self.data.write();
            if old_tid.epoch() < new_tid.epoch() {
                *self.stable.lock() = Some((old_tid, data.clone()));
            }
            *data = new_row;
        }
        self.meta.store(new_tid.raw(), Ordering::Release);
    }

    /// Unsynchronized write used in the partitioned phase (single writer per
    /// partition): no lock acquisition, but the same epoch stash is kept.
    pub fn write_unsynchronized(&self, new_row: Row, new_tid: Tid) {
        let old_tid = self.tid();
        {
            let mut data = self.data.write();
            if old_tid.epoch() < new_tid.epoch() {
                *self.stable.lock() = Some((old_tid, data.clone()));
            }
            *data = new_row;
        }
        self.meta.store(new_tid.raw(), Ordering::Release);
    }

    /// Applies a replicated full-row write under the **Thomas write rule**:
    /// the write is installed only if its TID is larger than the record's
    /// current TID. Returns `true` if the write was applied.
    ///
    /// Replication streams in the single-master phase may deliver writes out
    /// of order; because conflicting TIDs are assigned in serial-equivalent
    /// order, dropping stale writes is correct (Section 3).
    pub fn apply_value_thomas(&self, row: Row, tid: Tid) -> bool {
        let mut spins = 0;
        loop {
            let cur = self.meta.load(Ordering::Acquire);
            if cur & LOCK_BIT != 0 {
                spin_backoff(&mut spins);
                continue;
            }
            let cur_tid = Tid::from_raw(cur);
            if tid <= cur_tid {
                return false;
            }
            if !self.try_lock() {
                continue;
            }
            // Re-check under the lock: another applier may have advanced it.
            let cur_tid = Tid::from_raw(self.meta.load(Ordering::Acquire) & !LOCK_BIT);
            if tid <= cur_tid {
                self.unlock();
                return false;
            }
            self.write_and_unlock(row, tid);
            return true;
        }
    }

    /// The stashed pre-image, if any. The stash belongs to the epoch of the
    /// record's *current* TID: it is only meaningful while that epoch is in
    /// flight, and becomes unreachable garbage (overwritten by the next
    /// cross-epoch write) once the epoch commits.
    pub fn stable_version(&self) -> Option<(Tid, Row)> {
        self.stable.lock().clone()
    }

    /// Reverts the record to its stable version if its current version was
    /// written in an epoch **later than** `committed_epoch`. Returns `true`
    /// if a revert happened.
    ///
    /// This implements the "revert to the last committed epoch" step of
    /// failure handling (Figure 6): versions written in the in-flight epoch
    /// were never released to clients and are discarded.
    ///
    /// The epoch gate below is also what makes stale stashes harmless: a
    /// record last written in a committed epoch is skipped outright, so the
    /// stash it may still carry from an even older epoch is never read.
    pub fn revert_to_epoch(&self, committed_epoch: Epoch) -> bool {
        let cur_tid = self.tid();
        if cur_tid.epoch() <= committed_epoch {
            return false;
        }
        // Acquire `data` before `stable`, matching the write paths
        // (`write_and_unlock`, `write_unsynchronized`) and the workspace
        // lock-order manifest: taking them in the opposite order here is a
        // potential deadlock against a concurrent writer.
        let mut data = self.data.write();
        let mut stable = self.stable.lock();
        if let Some((old_tid, old_row)) = stable.take() {
            debug_assert!(old_tid.epoch() <= committed_epoch);
            *data = old_row;
            self.meta.store(old_tid.raw(), Ordering::Release);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::row::row;
    use star_common::FieldValue;
    use std::sync::Arc;

    fn r(v: u64) -> Row {
        row([FieldValue::U64(v)])
    }

    #[test]
    fn new_record_has_zero_tid_and_is_unlocked() {
        let rec = Record::new(r(1));
        assert_eq!(rec.tid(), Tid::ZERO);
        assert!(!rec.is_locked());
        assert_eq!(rec.read().row, r(1));
    }

    #[test]
    fn lock_unlock_cycle() {
        let rec = Record::new(r(1));
        assert!(rec.try_lock());
        assert!(rec.is_locked());
        assert!(!rec.try_lock());
        rec.unlock();
        assert!(!rec.is_locked());
    }

    #[test]
    fn write_and_unlock_updates_tid_and_data() {
        let rec = Record::new(r(1));
        rec.lock();
        rec.write_and_unlock(r(2), Tid::new(1, 5));
        assert_eq!(rec.tid(), Tid::new(1, 5));
        assert!(!rec.is_locked());
        assert_eq!(rec.read().row, r(2));
    }

    #[test]
    fn thomas_rule_rejects_stale_writes() {
        let rec = Record::new(r(1));
        assert!(rec.apply_value_thomas(r(10), Tid::new(1, 10)));
        // An older write arriving later must be dropped.
        assert!(!rec.apply_value_thomas(r(5), Tid::new(1, 5)));
        assert_eq!(rec.read().row, r(10));
        // A newer write is applied.
        assert!(rec.apply_value_thomas(r(20), Tid::new(1, 20)));
        assert_eq!(rec.read().row, r(20));
    }

    #[test]
    fn thomas_rule_out_of_order_converges() {
        // Applying the same set of writes in any order must converge to the
        // value of the largest TID.
        let writes = [(Tid::new(1, 3), r(3)), (Tid::new(1, 1), r(1)), (Tid::new(1, 2), r(2))];
        let rec = Record::new(r(0));
        for (tid, row) in writes.iter() {
            rec.apply_value_thomas(row.clone(), *tid);
        }
        assert_eq!(rec.read().row, r(3));
        assert_eq!(rec.tid(), Tid::new(1, 3));
    }

    #[test]
    fn epoch_revert_restores_previous_version() {
        let rec = Record::new(r(1));
        // Commit in epoch 1.
        rec.lock();
        rec.write_and_unlock(r(10), Tid::new(1, 1));
        // Write in epoch 2, which then fails before the fence. The
        // cross-epoch write replaces the stash with epoch 1's version.
        rec.lock();
        rec.write_and_unlock(r(20), Tid::new(2, 1));
        assert_eq!(rec.read().row, r(20));
        assert!(rec.revert_to_epoch(1));
        assert_eq!(rec.read().row, r(10));
        assert_eq!(rec.tid(), Tid::new(1, 1));
    }

    #[test]
    fn revert_is_noop_for_committed_epochs() {
        let rec = Record::new(r(1));
        rec.lock();
        rec.write_and_unlock(r(10), Tid::new(1, 1));
        // Epoch 1 has committed: the gate skips the record even though a
        // stale stash (the loaded row) is still physically present.
        assert!(!rec.revert_to_epoch(1));
        assert_eq!(rec.read().row, r(10));
        assert!(rec.stable_version().is_some(), "lazy invalidation keeps the stash in place");
    }

    #[test]
    fn unsynchronized_path_matches_synchronized() {
        let rec = Record::new(r(1));
        rec.write_unsynchronized(r(7), Tid::new(1, 1));
        assert_eq!(rec.read_unsynchronized().row, r(7));
        assert_eq!(rec.read().tid, Tid::new(1, 1));
    }

    #[test]
    fn concurrent_thomas_appliers_converge_to_max_tid() {
        let rec = Arc::new(Record::new(r(0)));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for s in 1..200u64 {
                    rec.apply_value_thomas(r(t * 1000 + s), Tid::new(1, s * 4 + t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The winning TID must be the maximum of all applied ones: s=199,t=3.
        assert_eq!(rec.tid(), Tid::new(1, 199 * 4 + 3));
        assert!(!rec.is_locked());
    }

    #[test]
    fn concurrent_lockers_serialize() {
        let rec = Arc::new(Record::new(r(0)));
        let mut handles = Vec::new();
        for t in 1..=4u64 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    rec.lock();
                    let cur = rec.read_unsynchronized().row.field(0).unwrap().as_u64().unwrap();
                    rec.write_and_unlock(r(cur + 1), Tid::new(1, t * 1000 + i + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 400 serialized increments.
        assert_eq!(rec.read().row.field(0).unwrap().as_u64(), Some(400));
    }
}
