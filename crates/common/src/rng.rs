//! Workload random-number helpers: uniform keys, Zipfian skew and the TPC-C
//! `NURand` non-uniform distribution.
//!
//! The YCSB experiments in the paper use a uniform access distribution; the
//! Zipfian generator is included because it is the standard YCSB knob for
//! skewed runs and is used by the extension benchmarks in this repository.

use rand::Rng;

/// A Zipfian distribution over `0..n` with exponent `theta`, using the
/// Gray et al. rejection-free computation popularised by the YCSB driver.
///
/// `theta = 0` degenerates to uniform; YCSB's default skew is `0.99`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a Zipfian distribution over `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf { n, theta, alpha, zetan, eta, zeta2 }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For the sizes used in benchmarks (<= a few million) the direct sum
        // is fine and exact.
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Number of items in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a value in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }

    /// Exposes the precomputed `zeta(2)` for tests of numerical stability.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// TPC-C `NURand(A, x, y)` non-uniform random distribution (clause 2.1.6).
///
/// `c` is the per-run constant; the constant-load rules of clause 2.1.6.1 are
/// not modelled because we never reuse a database across runs.
pub fn nurand<R: Rng + ?Sized>(rng: &mut R, a: u64, x: u64, y: u64, c: u64) -> u64 {
    let lhs = rng.gen_range(0..=a) | rng.gen_range(x..=y);
    (lhs + c) % (y - x + 1) + x
}

/// Uniform integer in `[lo, hi]` (inclusive), mirroring the TPC-C spec's
/// `random(x, y)` helper.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    rng.gen_range(lo..=hi)
}

/// Random alphanumeric string of length in `[lo, hi]`, as used by TPC-C data
/// generation (`a-string`).
pub fn astring<R: Rng + ?Sized>(rng: &mut R, lo: usize, hi: usize) -> String {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let len = rng.gen_range(lo..=hi);
    (0..len).map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char).collect()
}

/// Random numeric string of length in `[lo, hi]` (`n-string` in TPC-C).
pub fn nstring<R: Rng + ?Sized>(rng: &mut R, lo: usize, hi: usize) -> String {
    let len = rng.gen_range(lo..=hi);
    (0..len).map(|_| char::from(b'0' + rng.gen_range(0..10u8))).collect()
}

/// Random byte payload of exactly `len` bytes (YCSB column values).
pub fn random_bytes<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    rng.fill(&mut buf[..]);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_stays_in_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = Zipf::new(1000, 0.99);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn zipf_skews_towards_small_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        let z = Zipf::new(10_000, 0.99);
        let mut head = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // With theta=0.99 the hottest 1% of keys should absorb far more than
        // 1% of accesses (empirically ~35-60%).
        assert!(head > total / 5, "head hits = {head}");
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(100, 0.0);
        let mut counts = [0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max < min * 2, "min={min} max={max}");
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    fn zipf_is_seed_stable() {
        // The benchmark lanes lean on byte-identical key streams per seed:
        // two samplers built from the same parameters, driven by RNGs with
        // the same seed, must agree draw for draw (and a different seed must
        // diverge somewhere).
        let draw = |seed: u64| -> Vec<u64> {
            let z = Zipf::new(4096, 0.99);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..4096).map(|_| z.sample(&mut rng)).collect()
        };
        let a = draw(42);
        let b = draw(42);
        assert_eq!(a, b, "same seed must reproduce the exact sample sequence");
        let bytes_a: Vec<u8> = a.iter().flat_map(|v| v.to_le_bytes()).collect();
        let bytes_b: Vec<u8> = b.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(bytes_a, bytes_b);
        assert_ne!(a, draw(43), "different seeds must diverge");
    }

    #[test]
    fn zipf_rank_one_frequency_matches_theory() {
        // Under the Gray et al. construction the hottest key (rank 1) is
        // drawn with probability exactly 1/zeta(n, theta). At YCSB's default
        // theta = 0.99 over 1000 keys that is ~13%; the empirical frequency
        // over a large sample must land within a few percent of it.
        let n = 1000;
        let theta = 0.99;
        let z = Zipf::new(n, theta);
        let expected = 1.0 / Zipf::zeta(n, theta);
        let mut rng = StdRng::seed_from_u64(99);
        let total = 200_000;
        let hits = (0..total).filter(|_| z.sample(&mut rng) == 0).count();
        let observed = hits as f64 / total as f64;
        assert!(
            (observed - expected).abs() < 0.1 * expected,
            "rank-1 frequency {observed:.4} deviates from theoretical {expected:.4}"
        );
    }

    #[test]
    fn nurand_respects_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 1023, 1, 3000, 259);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn strings_have_requested_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let s = astring(&mut rng, 8, 16);
            assert!((8..=16).contains(&s.len()));
            let n = nstring(&mut rng, 4, 4);
            assert_eq!(n.len(), 4);
            assert!(n.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn random_bytes_exact_length() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(random_bytes(&mut rng, 10).len(), 10);
        assert_eq!(random_bytes(&mut rng, 0).len(), 0);
    }

    #[test]
    fn uniform_is_inclusive() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = uniform(&mut rng, 3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }
}
