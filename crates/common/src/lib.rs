//! Shared primitives for the STAR reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`tid`] — transaction identifiers with an embedded epoch, following the
//!   Silo/STAR TID rules, plus the per-thread [`tid::TidGenerator`].
//! * [`row`] — typed rows ([`row::Row`], [`row::FieldValue`]) and the
//!   operations that can be replicated against them ([`row::Operation`]).
//! * [`config`] — cluster, replication and workload configuration.
//! * [`clock`] — injectable time sources ([`clock::WallClock`],
//!   [`clock::VirtualClock`]) the transport layer stamps delivery deadlines
//!   with.
//! * [`rng`] — uniform / Zipfian / TPC-C `NURand` distributions.
//! * [`stats`] — latency histograms and throughput counters used by the
//!   benchmark harness to report the paper's tables and figures.
//! * [`error`] — the common error and abort types.
//!
//! Everything here is independent of the storage engine and of the network
//! substrate so that it can be unit-tested in isolation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod config;
pub mod error;
pub mod rng;
pub mod row;
pub mod stats;
pub mod tid;

pub use clock::{Clock, VirtualClock, WallClock};
pub use config::{
    ClusterConfig, ClusterConfigBuilder, EngineKind, ReplicationMode, ReplicationStrategy,
};
pub use error::{AbortReason, Error, Result};
pub use row::{FieldValue, Operation, Row};
pub use stats::{CounterSnapshot, PhaseBreakdown, RunCounters, RunReport, BREAKDOWN_VERSION};
pub use tid::{Epoch, Tid, TidGenerator};

/// Identifier of a table in the database catalog.
pub type TableId = u32;

/// Identifier of a partition. Partitions are numbered globally across the
/// cluster: partition `p` lives on node `p % num_nodes` in the default layout.
pub type PartitionId = usize;

/// Identifier of a node in the (simulated) cluster.
pub type NodeId = usize;

/// Primary keys are 64-bit integers. Composite keys (e.g. TPC-C
/// `(warehouse, district, order)`) are bit-packed into a `u64` by the workload
/// crates; the storage layer treats keys as opaque.
pub type Key = u64;
