//! Time sources for the transport layer.
//!
//! The in-memory simulation transport stamps every envelope with a delivery
//! deadline. Reading the wall clock for that deadline made the transport the
//! last non-deterministic component in the simulation-facing code, so the
//! clock is now injected: [`WallClock`] preserves the real-time latency
//! semantics the latency tests rely on, while [`VirtualClock`] gives
//! deterministic, manually-advanced time for simulation and replay.
//!
//! Deadlines are expressed as nanoseconds on a monotonic axis whose origin is
//! clock-defined (construction time for [`WallClock`], zero for
//! [`VirtualClock`]). Only differences between values from the *same* clock
//! are meaningful.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source the transport layer reads delivery deadlines from.
///
/// Implementations must be monotone: successive calls to
/// [`Clock::now_nanos`] never decrease.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Current time in nanoseconds since the clock's origin.
    fn now_nanos(&self) -> u64;

    /// Blocks (or advances virtual time) until `now_nanos() >= deadline`.
    fn sleep_until_nanos(&self, deadline: u64);
}

/// Real time: nanoseconds since the clock was constructed, with genuine
/// sleeping. This is the default for in-memory transports so configured
/// network latency remains observable in wall-clock terms.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a wall clock anchored at the current instant.
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl fmt::Debug for WallClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WallClock").finish()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        // Saturate instead of truncating: u64 nanoseconds cover ~584 years
        // from the origin, far beyond any process lifetime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn sleep_until_nanos(&self, deadline: u64) {
        let now = self.now_nanos();
        if deadline > now {
            std::thread::sleep(Duration::from_nanos(deadline - now));
        }
    }
}

/// Deterministic time: an atomic counter advanced either explicitly by the
/// test harness ([`VirtualClock::advance_to`]) or implicitly when a reader
/// sleeps past a deadline. No real time passes.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// Creates a virtual clock at time zero.
    pub fn new() -> Self {
        VirtualClock { now: AtomicU64::new(0) }
    }

    /// Advances the clock to `nanos` if that is later than the current time.
    /// Never moves time backwards.
    pub fn advance_to(&self, nanos: u64) {
        self.now.fetch_max(nanos, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_nanos(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_until_nanos(&self, deadline: u64) {
        // A virtual sleep is a jump: the waiter is by definition the thing
        // the clock was waiting on.
        self.advance_to(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_sleeps() {
        let clock = WallClock::new();
        let a = clock.now_nanos();
        clock.sleep_until_nanos(a + 2_000_000); // 2ms
        let b = clock.now_nanos();
        assert!(b >= a + 2_000_000, "slept {}ns, wanted >= 2ms", b - a);
    }

    #[test]
    fn wall_clock_sleep_past_deadline_is_noop() {
        let clock = WallClock::new();
        clock.sleep_until_nanos(0); // already elapsed
    }

    #[test]
    fn virtual_clock_starts_at_zero_and_jumps() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.sleep_until_nanos(1_000);
        assert_eq!(clock.now_nanos(), 1_000);
        // Sleeping to an earlier deadline never rewinds.
        clock.sleep_until_nanos(500);
        assert_eq!(clock.now_nanos(), 1_000);
    }

    #[test]
    fn virtual_clock_advance_is_monotone() {
        let clock = VirtualClock::new();
        clock.advance_to(10);
        clock.advance_to(5);
        assert_eq!(clock.now_nanos(), 10);
    }
}
