//! Measurement utilities: latency histograms, throughput counters and the
//! per-run summaries printed by the benchmark harness.
//!
//! The paper reports throughput (txns/sec), latency at the 50th and 99th
//! percentile (Figure 12), replication bandwidth (Section 5) and phase-switch
//! overhead (Figure 14). Everything needed to recompute those numbers lives
//! here so the engines themselves only have to increment counters.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bound (exclusive) of the 1 µs-resolution region, in µs.
const FINE_LIMIT_US: u64 = 8_192;
/// Upper bound (exclusive) of the mid region, in µs.
const MID_LIMIT_US: u64 = 100_000;
/// Bucket width of the mid region, in µs.
const MID_STEP_US: u64 = 16;
/// Upper bound (exclusive) of the coarse region, in µs.
const COARSE_LIMIT_US: u64 = 10_000_000;
/// Bucket width of the coarse region, in µs.
const COARSE_STEP_US: u64 = 1_000;

/// A fixed-bucket latency histogram with microsecond resolution.
///
/// Buckets are exponential: exact 1 µs granularity below ~8 ms (the whole
/// OLTP commit-latency range, so percentiles there are exact to the
/// microsecond rather than snapping to bucket edges), then 16 µs up to
/// 100 ms, then 1 ms up to 10 s. This avoids any allocation on the record
/// path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// 0..8192 µs in 1 µs buckets.
    fine: Vec<u64>,
    /// 8192 µs..100 ms in 16 µs buckets.
    mid: Vec<u64>,
    /// 100 ms..10 s in 1 ms buckets.
    coarse: Vec<u64>,
    /// Anything above 10 s.
    overflow: u64,
    count: u64,
    total_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            fine: vec![0; FINE_LIMIT_US as usize],
            mid: vec![0; ((MID_LIMIT_US - FINE_LIMIT_US) / MID_STEP_US) as usize],
            coarse: vec![0; ((COARSE_LIMIT_US - MID_LIMIT_US) / COARSE_STEP_US) as usize],
            overflow: 0,
            count: 0,
            total_us: 0,
            max_us: 0,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
        if us < FINE_LIMIT_US {
            self.fine[us as usize] += 1;
        } else if us < MID_LIMIT_US {
            self.mid[((us - FINE_LIMIT_US) / MID_STEP_US) as usize] += 1;
        } else if us < COARSE_LIMIT_US {
            self.coarse[((us - MID_LIMIT_US) / COARSE_STEP_US) as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or zero if empty.
    pub fn mean(&self) -> Duration {
        match self.total_us.checked_div(self.count) {
            Some(mean_us) => Duration::from_micros(mean_us),
            None => Duration::ZERO,
        }
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Latency at percentile `p` in `[0, 100]`, or zero if empty.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.fine.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(i as u64);
            }
        }
        for (i, c) in self.mid.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(FINE_LIMIT_US + i as u64 * MID_STEP_US);
            }
        }
        for (i, c) in self.coarse.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(MID_LIMIT_US + i as u64 * COARSE_STEP_US);
            }
        }
        Duration::from_micros(self.max_us)
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> Duration {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.percentile(99.0)
    }

    /// Merges another histogram into this one (used to combine per-worker
    /// histograms at the end of a run).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.fine.iter_mut().zip(&other.fine) {
            *a += b;
        }
        for (a, b) in self.mid.iter_mut().zip(&other.mid) {
            *a += b;
        }
        for (a, b) in self.coarse.iter_mut().zip(&other.coarse) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.total_us += other.total_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Version of the per-phase breakdown schema emitted into BENCH_*.json.
/// Bump when slices are added, removed or change meaning so the regression
/// gate never compares incompatible breakdowns.
pub const BREAKDOWN_VERSION: u32 = 1;

/// Where an engine's wall-clock time went, attributed to the five
/// latency-source slices of the VProfiler-style breakdown. All values are
/// cumulative microseconds over the measured window, summed across workers
/// (so a slice can exceed the window duration on a multi-threaded engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Time spent executing transaction logic (both phases / all workers).
    pub execution_us: u64,
    /// Time the epoch loop stalled inside a replication fence or group
    /// commit (the synchronous part only — drained work is attributed to
    /// the flush/fsync slices below).
    pub fence_wait_us: u64,
    /// Time applying/shipping replication batches to replicas.
    pub replication_flush_us: u64,
    /// Time flushing the write-ahead log.
    pub wal_fsync_us: u64,
    /// Time acquiring locks or validating read sets at commit.
    pub lock_or_validate_us: u64,
}

impl PhaseBreakdown {
    /// Sum of all slices, in microseconds.
    pub fn total_us(&self) -> u64 {
        self.execution_us
            + self.fence_wait_us
            + self.replication_flush_us
            + self.wal_fsync_us
            + self.lock_or_validate_us
    }

    /// The slices as `(name, µs)` pairs, in display order.
    pub fn slices(&self) -> [(&'static str, u64); 5] {
        [
            ("execution", self.execution_us),
            ("fence_wait", self.fence_wait_us),
            ("replication_flush", self.replication_flush_us),
            ("wal_fsync", self.wal_fsync_us),
            ("lock_or_validate", self.lock_or_validate_us),
        ]
    }
}

/// Thread-safe counters shared by all workers of an engine run.
#[derive(Debug, Default)]
pub struct RunCounters {
    /// Transactions that committed.
    pub committed: AtomicU64,
    /// Transactions aborted by concurrency control and retried.
    pub aborted: AtomicU64,
    /// Transactions aborted by the application (not retried).
    pub user_aborted: AtomicU64,
    /// Bytes shipped over the (simulated) network for replication.
    pub replication_bytes: AtomicU64,
    /// Bytes shipped for remote reads / 2PC coordination (baselines).
    pub coordination_bytes: AtomicU64,
    /// Number of replication fences executed (STAR) / group commits.
    pub fences: AtomicU64,
    /// Total wall-clock time spent inside replication fences, in microseconds.
    pub fence_time_us: AtomicU64,
    /// Bytes written to the write-ahead log.
    pub wal_bytes: AtomicU64,
    /// Breakdown slice: transaction execution time (µs).
    pub execution_us: AtomicU64,
    /// Breakdown slice: replication apply/ship time (µs).
    pub replication_flush_us: AtomicU64,
    /// Breakdown slice: WAL flush time (µs).
    pub wal_fsync_us: AtomicU64,
    /// Breakdown slice: lock acquisition / OCC validation time (µs).
    pub lock_or_validate_us: AtomicU64,
}

impl RunCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a committed transaction.
    pub fn add_commit(&self) {
        self.committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a concurrency-control abort (will be retried).
    pub fn add_abort(&self) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an application-requested abort.
    pub fn add_user_abort(&self) {
        self.user_aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record replication traffic.
    pub fn add_replication_bytes(&self, bytes: u64) {
        self.replication_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record coordination traffic (remote reads, 2PC votes, Calvin input
    /// replication).
    pub fn add_coordination_bytes(&self, bytes: u64) {
        self.coordination_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one replication fence and the time spent in it.
    pub fn add_fence(&self, elapsed: Duration) {
        self.fences.fetch_add(1, Ordering::Relaxed);
        self.fence_time_us.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Record bytes flushed to the WAL.
    pub fn add_wal_bytes(&self, bytes: u64) {
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record transaction execution time (breakdown slice).
    pub fn add_execution(&self, elapsed: Duration) {
        self.execution_us.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Record replication apply/ship time (breakdown slice).
    pub fn add_replication_flush(&self, elapsed: Duration) {
        self.replication_flush_us.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Record WAL flush time (breakdown slice).
    pub fn add_wal_fsync(&self, elapsed: Duration) {
        self.wal_fsync_us.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Record lock acquisition / validation time (breakdown slice).
    pub fn add_lock_or_validate(&self, elapsed: Duration) {
        self.lock_or_validate_us.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    }

    /// Snapshot the counters into a plain struct.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            user_aborted: self.user_aborted.load(Ordering::Relaxed),
            replication_bytes: self.replication_bytes.load(Ordering::Relaxed),
            coordination_bytes: self.coordination_bytes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            fence_time_us: self.fence_time_us.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            execution_us: self.execution_us.load(Ordering::Relaxed),
            replication_flush_us: self.replication_flush_us.load(Ordering::Relaxed),
            wal_fsync_us: self.wal_fsync_us.load(Ordering::Relaxed),
            lock_or_validate_us: self.lock_or_validate_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`RunCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Committed transactions.
    pub committed: u64,
    /// Concurrency-control aborts.
    pub aborted: u64,
    /// Application aborts.
    pub user_aborted: u64,
    /// Replication bytes shipped.
    pub replication_bytes: u64,
    /// Coordination bytes shipped.
    pub coordination_bytes: u64,
    /// Replication fences executed.
    pub fences: u64,
    /// Time spent in fences (µs).
    pub fence_time_us: u64,
    /// WAL bytes written.
    pub wal_bytes: u64,
    /// Breakdown slice: execution time (µs).
    #[serde(default)]
    pub execution_us: u64,
    /// Breakdown slice: replication apply/ship time (µs).
    #[serde(default)]
    pub replication_flush_us: u64,
    /// Breakdown slice: WAL flush time (µs).
    #[serde(default)]
    pub wal_fsync_us: u64,
    /// Breakdown slice: lock/validation time (µs).
    #[serde(default)]
    pub lock_or_validate_us: u64,
}

impl CounterSnapshot {
    /// Abort rate over all concurrency-control attempts.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// The five-slice latency-source breakdown. Fence wait is the synchronous
    /// fence stall already tracked by `fence_time_us`.
    pub fn breakdown(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            execution_us: self.execution_us,
            fence_wait_us: self.fence_time_us,
            replication_flush_us: self.replication_flush_us,
            wal_fsync_us: self.wal_fsync_us,
            lock_or_validate_us: self.lock_or_validate_us,
        }
    }
}

/// Result of a benchmark run of one engine on one workload configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Engine label (e.g. "STAR", "Dist. OCC").
    pub engine: String,
    /// Workload label (e.g. "YCSB", "TPC-C").
    pub workload: String,
    /// Percentage of cross-partition transactions requested.
    pub cross_partition_pct: f64,
    /// Wall-clock duration of the measured window.
    pub duration: Duration,
    /// Counter values over the window.
    pub counters: CounterSnapshot,
    /// Commit latency distribution.
    #[serde(skip)]
    pub latency: LatencyHistogram,
    /// Throughput in committed transactions per second.
    pub throughput: f64,
}

impl RunReport {
    /// Builds a report, computing throughput from the counters and duration.
    pub fn new(
        engine: impl Into<String>,
        workload: impl Into<String>,
        cross_partition_pct: f64,
        duration: Duration,
        counters: CounterSnapshot,
        latency: LatencyHistogram,
    ) -> Self {
        let throughput = if duration.is_zero() {
            0.0
        } else {
            counters.committed as f64 / duration.as_secs_f64()
        };
        RunReport {
            engine: engine.into(),
            workload: workload.into(),
            cross_partition_pct,
            duration,
            counters,
            latency,
            throughput,
        }
    }

    /// The latency-source breakdown measured over the window.
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.counters.breakdown()
    }
}

/// A shared, mutex-protected histogram for workers that cannot keep a local
/// one (e.g. short-lived scoped threads).
#[derive(Debug, Default)]
pub struct SharedHistogram {
    inner: Mutex<LatencyHistogram>,
}

impl SharedHistogram {
    /// Creates an empty shared histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        self.inner.lock().record(latency);
    }

    /// Merges a worker-local histogram in bulk (cheaper than per-observation
    /// locking).
    pub fn merge(&self, other: &LatencyHistogram) {
        self.inner.lock().merge(other);
    }

    /// Clones the current contents.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert!(h.p50() <= h.p99());
        assert!(h.p99() <= h.max());
        // p50 of 1..=1000 µs should be close to 500 µs.
        let p50 = h.p50().as_micros() as i64;
        assert!((p50 - 500).abs() <= 5, "p50={p50}");
        let p99 = h.p99().as_micros() as i64;
        assert!((p99 - 990).abs() <= 15, "p99={p99}");
    }

    #[test]
    fn buckets_cover_milliseconds() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(5));
        h.record(Duration::from_millis(7));
        h.record(Duration::from_millis(9));
        let p50 = h.p50();
        assert!(p50 >= Duration::from_millis(6) && p50 <= Duration::from_millis(8), "{p50:?}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(20));
        b.record(Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Duration::from_millis(2));
    }

    #[test]
    fn counters_snapshot() {
        let c = RunCounters::new();
        c.add_commit();
        c.add_commit();
        c.add_abort();
        c.add_user_abort();
        c.add_replication_bytes(128);
        c.add_coordination_bytes(64);
        c.add_fence(Duration::from_micros(250));
        c.add_wal_bytes(42);
        let s = c.snapshot();
        assert_eq!(s.committed, 2);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.user_aborted, 1);
        assert_eq!(s.replication_bytes, 128);
        assert_eq!(s.coordination_bytes, 64);
        assert_eq!(s.fences, 1);
        assert_eq!(s.fence_time_us, 250);
        assert_eq!(s.wal_bytes, 42);
        assert!((s.abort_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_slices_accumulate_and_total() {
        let c = RunCounters::new();
        c.add_execution(Duration::from_micros(100));
        c.add_execution(Duration::from_micros(50));
        c.add_fence(Duration::from_micros(30));
        c.add_replication_flush(Duration::from_micros(20));
        c.add_wal_fsync(Duration::from_micros(10));
        c.add_lock_or_validate(Duration::from_micros(5));
        let b = c.snapshot().breakdown();
        assert_eq!(b.execution_us, 150);
        assert_eq!(b.fence_wait_us, 30);
        assert_eq!(b.replication_flush_us, 20);
        assert_eq!(b.wal_fsync_us, 10);
        assert_eq!(b.lock_or_validate_us, 5);
        assert_eq!(b.total_us(), 215);
        assert_eq!(b.slices()[0], ("execution", 150));
    }

    #[test]
    fn percentiles_are_exact_to_the_microsecond_in_the_oltp_range() {
        // The quantization bug this guards against: p50 values snapping to
        // bucket starts (e.g. exactly 13000 µs with 100 µs-wide buckets).
        let mut h = LatencyHistogram::new();
        for us in [4_321u64, 4_322, 4_323] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.p50(), Duration::from_micros(4_322));
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(7_777));
        assert_eq!(h.p50(), Duration::from_micros(7_777));
        assert_eq!(h.p99(), Duration::from_micros(7_777));
    }

    #[test]
    fn run_report_computes_throughput() {
        let counters = CounterSnapshot { committed: 5_000, ..CounterSnapshot::default() };
        let report = RunReport::new(
            "STAR",
            "YCSB",
            10.0,
            Duration::from_secs(2),
            counters,
            LatencyHistogram::new(),
        );
        assert!((report.throughput - 2_500.0).abs() < 1e-9);
    }

    #[test]
    fn shared_histogram_merging() {
        let shared = SharedHistogram::new();
        let mut local = LatencyHistogram::new();
        local.record(Duration::from_micros(100));
        shared.merge(&local);
        shared.record(Duration::from_micros(200));
        assert_eq!(shared.snapshot().count(), 2);
    }
}
