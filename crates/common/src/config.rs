//! Cluster, engine and replication configuration.
//!
//! The defaults mirror the experimental setup in Section 7.1 of the paper,
//! scaled down so that every figure can be regenerated on a laptop: the paper
//! runs 4 nodes × 12 workers over a 4.8 Gbit/s network; the defaults here run
//! 4 simulated nodes × 2 workers with a microsecond-scale latency model.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which replication strategy is used for the writes of committed
/// transactions (Section 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationStrategy {
    /// Ship the full row for every write. Safe to apply in any order under
    /// the Thomas write rule; required whenever a partition can be updated by
    /// multiple threads (the single-master phase).
    Value,
    /// Ship the operation (delta) only. Requires the per-partition stream to
    /// be produced by a single thread and applied in order (the partitioned
    /// phase).
    Operation,
    /// STAR's hybrid: value replication in the single-master phase, operation
    /// replication in the partitioned phase.
    Hybrid,
}

/// Whether replication of committed writes is synchronous (the primary holds
/// write locks until replicas acknowledge) or asynchronous with an epoch-based
/// group commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationMode {
    /// Asynchronous replication + epoch-based group commit (STAR's default and
    /// the stronger configuration of the baselines).
    Async,
    /// Synchronous replication: every transaction waits for a replication
    /// round trip before releasing its locks.
    Sync,
}

/// Which engine a benchmark run drives. Used by the benchmark harness to
/// label series exactly as the paper's figures do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// The STAR engine (phase switching over asymmetric replication).
    Star,
    /// Primary/backup Silo-style OCC on a single primary (non-partitioned).
    PbOcc,
    /// Distributed OCC with two-phase commit (partitioning-based).
    DistOcc,
    /// Distributed strict two-phase locking, NO_WAIT, with two-phase commit.
    DistS2pl,
    /// Calvin with a multi-threaded lock manager (`Calvin-x`).
    Calvin,
}

impl EngineKind {
    /// Label used in figure output, matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Star => "STAR",
            EngineKind::PbOcc => "PB. OCC",
            EngineKind::DistOcc => "Dist. OCC",
            EngineKind::DistS2pl => "Dist. S2PL",
            EngineKind::Calvin => "Calvin",
        }
    }
}

/// Configuration of a (simulated) STAR cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Total number of nodes, `n = f + k`.
    pub num_nodes: usize,
    /// Number of nodes holding a full replica (`f` in the paper). STAR
    /// requires `f >= 1`; the designated master is chosen among these.
    pub full_replicas: usize,
    /// Worker threads per node.
    pub workers_per_node: usize,
    /// Number of partitions in the database. The paper sets this to the total
    /// number of worker threads.
    pub partitions: usize,
    /// Iteration time `e = τp + τs` of the phase-switching algorithm.
    pub iteration: Duration,
    /// Replication strategy for committed writes.
    pub replication_strategy: ReplicationStrategy,
    /// Synchronous or asynchronous replication.
    pub replication_mode: ReplicationMode,
    /// Number of replicas of each partition (primary + backups). The paper's
    /// experiments use 2.
    pub replication_factor: usize,
    /// One-way network latency applied by the simulated network to every
    /// message between distinct nodes.
    pub network_latency: Duration,
    /// Whether the write-ahead log is enabled (Figure 15(b)).
    pub disk_logging: bool,
    /// Base seed mixed into every worker's transaction-generation RNG (the
    /// initial data load uses fixed per-partition seeds and is unaffected, so
    /// replicas stay identical). Two runs with the same configuration and
    /// seed draw identical transaction streams, which is what the benchmark
    /// harness's `--seed` flag relies on.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_nodes: 4,
            full_replicas: 1,
            workers_per_node: 2,
            partitions: 8,
            iteration: Duration::from_millis(10),
            replication_strategy: ReplicationStrategy::Hybrid,
            replication_mode: ReplicationMode::Async,
            replication_factor: 2,
            network_latency: Duration::from_micros(100),
            disk_logging: false,
            seed: 0,
        }
    }
}

/// Validating builder for [`ClusterConfig`].
///
/// This is the sanctioned way to construct a configuration outside
/// `crates/core`: every setter mirrors one field, `nodes(n)` keeps the
/// paper's `partitions = total workers` convention unless `partitions` is
/// set explicitly, and [`build`](Self::build) rejects infeasible topologies
/// with a typed [`Error::Config`](crate::Error::Config) instead of letting a
/// field-poked struct reach an engine.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
    explicit_partitions: bool,
}

impl ClusterConfigBuilder {
    /// Sets the number of nodes. Unless [`partitions`](Self::partitions) is
    /// called, the partition count tracks `nodes * workers_per_node`.
    pub fn nodes(mut self, num_nodes: usize) -> Self {
        self.config.num_nodes = num_nodes;
        self
    }

    /// Sets the number of full-replica nodes (`f` in the paper).
    pub fn full_replicas(mut self, full_replicas: usize) -> Self {
        self.config.full_replicas = full_replicas;
        self
    }

    /// Sets the number of worker threads per node.
    pub fn workers_per_node(mut self, workers: usize) -> Self {
        self.config.workers_per_node = workers;
        self
    }

    /// Sets an explicit partition count, overriding the
    /// `partitions = total workers` convention.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.config.partitions = partitions;
        self.explicit_partitions = true;
        self
    }

    /// Sets the phase-switching iteration time `e`.
    pub fn iteration(mut self, iteration: Duration) -> Self {
        self.config.iteration = iteration;
        self
    }

    /// Sets the replication strategy.
    pub fn replication_strategy(mut self, strategy: ReplicationStrategy) -> Self {
        self.config.replication_strategy = strategy;
        self
    }

    /// Sets synchronous or asynchronous replication.
    pub fn replication_mode(mut self, mode: ReplicationMode) -> Self {
        self.config.replication_mode = mode;
        self
    }

    /// Sets the replication factor.
    pub fn replication_factor(mut self, factor: usize) -> Self {
        self.config.replication_factor = factor;
        self
    }

    /// Sets the simulated one-way network latency.
    pub fn network_latency(mut self, latency: Duration) -> Self {
        self.config.network_latency = latency;
        self
    }

    /// Enables or disables write-ahead logging.
    pub fn disk_logging(mut self, enabled: bool) -> Self {
        self.config.disk_logging = enabled;
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration, or a typed
    /// [`Error::Config`](crate::Error::Config) describing why the topology is
    /// infeasible.
    pub fn build(mut self) -> Result<ClusterConfig, crate::Error> {
        if !self.explicit_partitions {
            self.config.partitions = self.config.num_nodes * self.config.workers_per_node;
        }
        self.config.validate().map_err(crate::Error::Config)?;
        Ok(self.config)
    }
}

impl ClusterConfig {
    /// Starts a validating builder from the default configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// Starts a builder seeded from this configuration (for derived variants
    /// — e.g. the same cluster with synchronous replication). The partition
    /// count is kept as-is rather than re-derived.
    pub fn to_builder(&self) -> ClusterConfigBuilder {
        ClusterConfigBuilder { config: self.clone(), explicit_partitions: true }
    }

    /// Base value every engine mixes (XOR) into its per-worker RNG seeds. The
    /// Fibonacci multiply spreads low-entropy seeds across the word; seed 0
    /// maps to 0 on purpose, which reproduces the pre-`seed` constants so the
    /// default configuration draws the same streams as older builds. All
    /// engines must derive worker seeds from this one value — that is the
    /// "same seed, same transaction streams" contract `star-bench --seed`
    /// relies on.
    pub fn rng_seed_base(&self) -> u64 {
        self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// A config with `n` nodes and the default per-node settings, keeping the
    /// paper's convention `partitions = total workers`.
    pub fn with_nodes(num_nodes: usize) -> Self {
        let mut c = ClusterConfig { num_nodes, ..Default::default() };
        c.partitions = c.num_nodes * c.workers_per_node;
        c
    }

    /// Number of partial-replica nodes (`k` in the paper).
    pub fn partial_replicas(&self) -> usize {
        self.num_nodes.saturating_sub(self.full_replicas)
    }

    /// Total number of worker threads in the cluster.
    pub fn total_workers(&self) -> usize {
        self.num_nodes * self.workers_per_node
    }

    /// Which node owns (is primary for) a partition during the partitioned
    /// phase. Partitions are assigned round-robin across all nodes, as in
    /// Figure 2 of the paper where every node masters a portion of the
    /// database.
    pub fn partition_primary(&self, partition: usize) -> usize {
        partition % self.num_nodes
    }

    /// The partial-replica node holding the backup (secondary) copy of a
    /// partition, if the partition needs one.
    ///
    /// The paper requires that the `k` partial replicas *together* contain at
    /// least one full copy of the database, so a partition mastered on a
    /// full-replica node always gets a partial secondary. A partition
    /// mastered on a partial node is already stored at every full replica;
    /// it gets an extra partial secondary only when `replication_factor`
    /// asks for more copies than primary + full replicas provide. (An
    /// unconditional extra secondary here used to give most partitions three
    /// copies in the default two-replica configuration — every partitioned
    /// commit paid one redundant replica apply beyond the paper's layout.)
    pub fn partition_secondary(&self, partition: usize) -> Option<usize> {
        let primary = self.partition_primary(partition);
        let k = self.partial_replicas();
        if k == 0 {
            // Every node is a full replica; every copy already exists.
            return None;
        }
        if primary < self.full_replicas {
            // Primary on a full replica: the secondary must be a partial
            // replica so that the partial replicas cover this partition.
            return Some(self.full_replicas + (partition % k));
        }
        // Primary on a partial replica: the full replicas already back it up.
        if 1 + self.full_replicas >= self.replication_factor || k == 1 {
            return None;
        }
        let offset = primary - self.full_replicas;
        Some(self.full_replicas + ((offset + 1) % k))
    }

    /// The designated master node for the single-master phase: the first
    /// full-replica node.
    pub fn master_node(&self) -> usize {
        0
    }

    /// True if `node` holds a full replica.
    pub fn is_full_replica(&self, node: usize) -> bool {
        node < self.full_replicas
    }

    /// Partitions whose primary is `node`.
    pub fn partitions_of(&self, node: usize) -> Vec<usize> {
        (0..self.partitions).filter(|p| self.partition_primary(*p) == node).collect()
    }

    /// True if `node` stores (a primary or secondary copy of) `partition`.
    pub fn node_stores_partition(&self, node: usize, partition: usize) -> bool {
        self.is_full_replica(node)
            || self.partition_primary(partition) == node
            || self.partition_secondary(partition) == Some(node)
    }

    /// Validates the configuration, returning a human-readable reason if it
    /// is not runnable.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_nodes == 0 {
            return Err("cluster must have at least one node".into());
        }
        if self.full_replicas == 0 {
            return Err("STAR requires at least one full replica (f >= 1)".into());
        }
        if self.full_replicas > self.num_nodes {
            return Err(format!(
                "full_replicas ({}) exceeds num_nodes ({})",
                self.full_replicas, self.num_nodes
            ));
        }
        if self.workers_per_node == 0 {
            return Err("workers_per_node must be positive".into());
        }
        if self.partitions == 0 {
            return Err("partitions must be positive".into());
        }
        if self.replication_factor < 1 {
            return Err("replication_factor must be at least 1".into());
        }
        if self.iteration.is_zero() {
            return Err("iteration time must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_paper_shape() {
        let c = ClusterConfig::default();
        c.validate().unwrap();
        assert_eq!(c.num_nodes, 4);
        assert_eq!(c.full_replicas, 1);
        assert_eq!(c.partial_replicas(), 3);
        assert_eq!(c.iteration, Duration::from_millis(10));
    }

    #[test]
    fn with_nodes_scales_partitions() {
        let c = ClusterConfig::with_nodes(8);
        assert_eq!(c.num_nodes, 8);
        assert_eq!(c.partitions, 8 * c.workers_per_node);
        c.validate().unwrap();
    }

    #[test]
    fn partition_layout_round_robin() {
        let c = ClusterConfig::with_nodes(4);
        assert_eq!(c.partition_primary(0), 0);
        assert_eq!(c.partition_primary(1), 1);
        assert_eq!(c.partition_primary(5), 1);
        // Partition 0 is mastered on the full replica, so its secondary must
        // sit on a partial node; partition 3's primary is a partial node
        // already backed by the full replica, so no secondary is needed at
        // the default replication factor of 2.
        assert_eq!(c.partition_secondary(0), Some(1));
        assert_eq!(c.partition_secondary(3), None);
        let c3 = ClusterConfig { replication_factor: 3, ..ClusterConfig::with_nodes(4) };
        assert_eq!(c3.partition_secondary(3), Some(1));
        let mine = c.partitions_of(2);
        assert!(mine.iter().all(|p| c.partition_primary(*p) == 2));
    }

    #[test]
    fn full_replica_stores_everything() {
        let c = ClusterConfig::with_nodes(4);
        for p in 0..c.partitions {
            assert!(c.node_stores_partition(0, p));
        }
        // a partial replica node stores only its own + secondary partitions
        let stored: Vec<_> = (0..c.partitions).filter(|p| c.node_stores_partition(2, *p)).collect();
        assert!(stored.len() < c.partitions);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = ClusterConfig { full_replicas: 0, ..ClusterConfig::default() };
        assert!(c.validate().is_err());
        let c = ClusterConfig { num_nodes: 0, ..ClusterConfig::default() };
        assert!(c.validate().is_err());
        let c = ClusterConfig { full_replicas: 9, ..ClusterConfig::default() };
        assert!(c.validate().is_err());
        let c = ClusterConfig { iteration: Duration::ZERO, ..ClusterConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_tracks_the_partitions_convention_and_validates() {
        let c = ClusterConfig::builder()
            .nodes(4)
            .full_replicas(2)
            .workers_per_node(3)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(c.partitions, 12, "partitions = total workers unless set explicitly");
        assert_eq!(c.full_replicas, 2);
        assert_eq!(c.seed, 7);

        let c = ClusterConfig::builder().nodes(4).partitions(5).build().unwrap();
        assert_eq!(c.partitions, 5);

        // Infeasible topologies come back as typed Error::Config.
        let err = ClusterConfig::builder().nodes(2).full_replicas(3).build().unwrap_err();
        assert!(matches!(err, crate::Error::Config(_)), "{err:?}");
        assert!(ClusterConfig::builder().nodes(0).build().is_err());
        assert!(ClusterConfig::builder().iteration(Duration::ZERO).build().is_err());
    }

    #[test]
    fn to_builder_round_trips_and_supports_variants() {
        let base = ClusterConfig::builder().nodes(4).build().unwrap();
        let same = base.to_builder().build().unwrap();
        assert_eq!(base, same);
        let sync = base.to_builder().replication_mode(ReplicationMode::Sync).build().unwrap();
        assert_eq!(sync.replication_mode, ReplicationMode::Sync);
        assert_eq!(sync.partitions, base.partitions, "partition count is preserved");
    }

    #[test]
    fn engine_labels_match_paper() {
        assert_eq!(EngineKind::Star.label(), "STAR");
        assert_eq!(EngineKind::PbOcc.label(), "PB. OCC");
        assert_eq!(EngineKind::DistOcc.label(), "Dist. OCC");
        assert_eq!(EngineKind::DistS2pl.label(), "Dist. S2PL");
        assert_eq!(EngineKind::Calvin.label(), "Calvin");
    }
}
