//! Error and abort types shared across the workspace.

use std::fmt;

/// Why a transaction aborted.
///
/// STAR distinguishes aborts required by the application logic (e.g. TPC-C
/// NewOrder with an invalid item id — roughly 1% of NewOrders) from aborts
/// caused by concurrency control; the former are counted as "completed" by the
/// TPC-C specification while the latter are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The stored procedure itself decided to abort (user abort).
    User,
    /// OCC read validation failed: a record in the read set changed or was
    /// locked by a concurrent transaction.
    ValidationFailed,
    /// A lock could not be acquired under the NO_WAIT policy (baselines).
    LockConflict,
    /// A remote node involved in the transaction failed or a network request
    /// timed out.
    NodeFailure,
    /// Two-phase commit voted to abort.
    PrepareFailed,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::User => "user abort",
            AbortReason::ValidationFailed => "read validation failed",
            AbortReason::LockConflict => "lock conflict (NO_WAIT)",
            AbortReason::NodeFailure => "node failure",
            AbortReason::PrepareFailed => "2PC prepare failed",
        };
        f.write_str(s)
    }
}

/// Top-level error type for the workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A transaction aborted; the caller decides whether to retry.
    Abort(AbortReason),
    /// A key was not found in the table it was expected in.
    KeyNotFound {
        /// Table that was probed.
        table: u32,
        /// Missing key.
        key: u64,
    },
    /// A table id is not present in the catalog.
    NoSuchTable(u32),
    /// A partition id is out of range for the database layout.
    NoSuchPartition(usize),
    /// The engine or cluster was asked to do something inconsistent with its
    /// configuration (e.g. master node without a full replica).
    Config(String),
    /// Failure in the (simulated) network substrate, e.g. sending to a node
    /// that was marked failed.
    Network(String),
    /// A durability / recovery component failed (WAL write, checkpoint load).
    Durability(String),
    /// An operation-replication entry could not be applied.
    Operation(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Abort(r) => write!(f, "transaction aborted: {r}"),
            Error::KeyNotFound { table, key } => {
                write!(f, "key {key} not found in table {table}")
            }
            Error::NoSuchTable(t) => write!(f, "no such table: {t}"),
            Error::NoSuchPartition(p) => write!(f, "no such partition: {p}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Network(msg) => write!(f, "network error: {msg}"),
            Error::Durability(msg) => write!(f, "durability error: {msg}"),
            Error::Operation(msg) => write!(f, "operation error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<crate::row::OperationError> for Error {
    fn from(e: crate::row::OperationError) -> Self {
        Error::Operation(e.message)
    }
}

impl Error {
    /// True if this error is a transaction abort (as opposed to a system
    /// error).
    pub fn is_abort(&self) -> bool {
        matches!(self, Error::Abort(_))
    }

    /// The abort reason, if this error is an abort.
    pub fn abort_reason(&self) -> Option<AbortReason> {
        match self {
            Error::Abort(r) => Some(*r),
            _ => None,
        }
    }
}

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_helpers() {
        let e = Error::Abort(AbortReason::ValidationFailed);
        assert!(e.is_abort());
        assert_eq!(e.abort_reason(), Some(AbortReason::ValidationFailed));
        let e = Error::NoSuchTable(3);
        assert!(!e.is_abort());
        assert_eq!(e.abort_reason(), None);
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(Error::KeyNotFound { table: 2, key: 9 }.to_string().contains("table 2"));
        assert!(Error::Abort(AbortReason::LockConflict).to_string().contains("NO_WAIT"));
        assert!(Error::Config("bad".into()).to_string().contains("bad"));
    }

    #[test]
    fn operation_error_converts() {
        let oe = crate::row::OperationError { message: "boom".into() };
        let e: Error = oe.into();
        assert!(matches!(e, Error::Operation(m) if m == "boom"));
    }
}
