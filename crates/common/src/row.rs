//! Typed rows and the replication operations that act on them.
//!
//! A [`Row`] is an ordered list of [`FieldValue`]s. Keeping the field
//! structure (instead of an opaque byte blob) is what allows STAR's two
//! replication strategies to be expressed faithfully:
//!
//! * **value replication** ships the whole row (all fields), which is safe to
//!   apply out of order under the Thomas write rule;
//! * **operation replication** ships an [`Operation`] that touches a single
//!   field (e.g. the string concatenation in TPC-C `Payment`), which is only
//!   correct when the replication stream of a partition is produced by a
//!   single thread and applied in order — exactly the partitioned phase.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single typed field of a row.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned 64-bit integer (ids, counts, quantities).
    U64(u64),
    /// Signed 64-bit integer (balances that may go negative, deltas).
    I64(i64),
    /// 64-bit float (amounts, discounts).
    F64(f64),
    /// Variable-length string (names, data columns, TPC-C `C_DATA`).
    Str(String),
    /// Raw bytes (YCSB columns).
    Bytes(Vec<u8>),
}

impl FieldValue {
    /// Approximate wire size of the field in bytes, used by the network
    /// substrate and the replication-bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        match self {
            FieldValue::U64(_) | FieldValue::I64(_) | FieldValue::F64(_) => 8,
            FieldValue::Str(s) => 4 + s.len(),
            FieldValue::Bytes(b) => 4 + b.len(),
        }
    }

    /// Returns the inner `u64`, if this field is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the inner `i64`, if this field is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            FieldValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the inner `f64`, if this field is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the inner string slice, if this field is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the inner byte slice, if this field is `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            FieldValue::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Byzantine corruption: flips one bit of the value (or appends a
    /// control character to a string), deterministically selected by
    /// `salt`. Shared by every fault-injection path in the repository —
    /// the simulated network's `Corrupt` verdict and the baselines'
    /// replication link — so the same salt always produces the same
    /// garbage. Returns `true` (every field kind is corruptible).
    pub fn corrupt(&mut self, salt: u64) -> bool {
        match self {
            FieldValue::U64(v) => *v ^= 1 << ((salt >> 16) % 64),
            FieldValue::I64(v) => *v ^= 1 << ((salt >> 16) % 63),
            // Flip a mantissa bit so the value stays finite but wrong.
            FieldValue::F64(v) => *v = f64::from_bits(v.to_bits() ^ (1 << ((salt >> 16) % 52))),
            FieldValue::Str(s) => s.push('\u{7}'),
            FieldValue::Bytes(b) => {
                if b.is_empty() {
                    b.push(0xFF);
                } else {
                    let i = (salt >> 16) as usize % b.len();
                    b[i] ^= 1 << ((salt >> 24) % 8);
                }
            }
        }
        true
    }
}

impl fmt::Debug for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "u64:{v}"),
            FieldValue::I64(v) => write!(f, "i64:{v}"),
            FieldValue::F64(v) => write!(f, "f64:{v}"),
            FieldValue::Str(s) => write!(f, "str:{:?}", s),
            FieldValue::Bytes(b) => write!(f, "bytes[{}]", b.len()),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<Vec<u8>> for FieldValue {
    fn from(v: Vec<u8>) -> Self {
        FieldValue::Bytes(v)
    }
}

/// An ordered collection of fields; the unit of storage and of value
/// replication.
#[derive(Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Row {
    fields: Vec<FieldValue>,
}

impl Row {
    /// Creates a row from a list of fields.
    pub fn new(fields: Vec<FieldValue>) -> Self {
        Row { fields }
    }

    /// An empty row (no fields). Useful as a placeholder for keys that exist
    /// purely as index entries.
    pub fn empty() -> Self {
        Row { fields: Vec::new() }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the row has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Borrow a field by index.
    pub fn field(&self, idx: usize) -> Option<&FieldValue> {
        self.fields.get(idx)
    }

    /// Mutably borrow a field by index.
    pub fn field_mut(&mut self, idx: usize) -> Option<&mut FieldValue> {
        self.fields.get_mut(idx)
    }

    /// Replaces a field, panicking if the index is out of range. The row
    /// schema is fixed at insert time, so an out-of-range index is a logic
    /// error in a stored procedure.
    pub fn set(&mut self, idx: usize, value: FieldValue) {
        self.fields[idx] = value;
    }

    /// Appends a field (used by loaders when building a row).
    pub fn push(&mut self, value: FieldValue) {
        self.fields.push(value);
    }

    /// Iterate over fields.
    pub fn iter(&self) -> impl Iterator<Item = &FieldValue> {
        self.fields.iter()
    }

    /// Approximate wire size of the full row in bytes (what value replication
    /// must ship).
    pub fn wire_size(&self) -> usize {
        4 + self.fields.iter().map(FieldValue::wire_size).sum::<usize>()
    }

    /// Byzantine corruption: mutates one salt-selected field in place (see
    /// [`FieldValue::corrupt`]). Returns `false` only for rows with no
    /// fields to flip.
    pub fn corrupt(&mut self, salt: u64) -> bool {
        if self.fields.is_empty() {
            return false;
        }
        let index = (salt >> 8) as usize % self.fields.len();
        self.fields[index].corrupt(salt)
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.fields.iter()).finish()
    }
}

impl FromIterator<FieldValue> for Row {
    fn from_iter<T: IntoIterator<Item = FieldValue>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

/// A replicable operation against a single field of a row.
///
/// These are the user-programmable operations mentioned in Section 5 of the
/// paper ("STAR provides APIs for users to manually program the operations,
/// e.g., string concatenation"). Applying an operation on a replica
/// re-computes the new field value locally instead of shipping it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operation {
    /// Overwrite one field with a new value.
    SetField {
        /// Index of the field to overwrite.
        field: usize,
        /// New value of the field.
        value: FieldValue,
    },
    /// Add a (possibly negative) delta to an `I64` field.
    AddI64 {
        /// Index of the field to update.
        field: usize,
        /// Signed delta to add.
        delta: i64,
    },
    /// Add a delta to an `F64` field (e.g. warehouse YTD in TPC-C Payment).
    AddF64 {
        /// Index of the field to update.
        field: usize,
        /// Delta to add.
        delta: f64,
    },
    /// Prepend a string to a `Str` field, truncating the result to
    /// `max_len` characters — the TPC-C `Payment` update of `C_DATA`.
    ConcatStr {
        /// Index of the field to update.
        field: usize,
        /// String to prepend.
        prefix: String,
        /// Maximum length to keep after concatenation.
        max_len: usize,
    },
    /// Overwrite the entire row. The fallback when no cheaper operation
    /// applies; wire cost is that of the whole row.
    SetRow {
        /// New row contents.
        row: Row,
    },
    /// Apply several operations to the same row, in order. Used when a stored
    /// procedure updates multiple fields of one record (e.g. TPC-C Payment
    /// touches the customer's balance, payment counters and `C_DATA`), which
    /// is still far cheaper to ship than the full row.
    Multi {
        /// The operations, applied left to right.
        ops: Vec<Operation>,
    },
}

/// Error produced when an [`Operation`] cannot be applied to a row, e.g. the
/// field index is out of range or the field has the wrong type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl fmt::Display for OperationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operation error: {}", self.message)
    }
}

impl std::error::Error for OperationError {}

impl Operation {
    /// Applies the operation to `row` in place.
    pub fn apply(&self, row: &mut Row) -> Result<(), OperationError> {
        fn bad(msg: impl Into<String>) -> OperationError {
            OperationError { message: msg.into() }
        }
        match self {
            Operation::SetField { field, value } => {
                let slot = row
                    .field_mut(*field)
                    .ok_or_else(|| bad(format!("field {field} out of range")))?;
                *slot = value.clone();
                Ok(())
            }
            Operation::AddI64 { field, delta } => {
                let slot = row
                    .field_mut(*field)
                    .ok_or_else(|| bad(format!("field {field} out of range")))?;
                match slot {
                    FieldValue::I64(v) => {
                        *v = v.wrapping_add(*delta);
                        Ok(())
                    }
                    other => Err(bad(format!("AddI64 on non-I64 field {other:?}"))),
                }
            }
            Operation::AddF64 { field, delta } => {
                let slot = row
                    .field_mut(*field)
                    .ok_or_else(|| bad(format!("field {field} out of range")))?;
                match slot {
                    FieldValue::F64(v) => {
                        *v += *delta;
                        Ok(())
                    }
                    other => Err(bad(format!("AddF64 on non-F64 field {other:?}"))),
                }
            }
            Operation::ConcatStr { field, prefix, max_len } => {
                let slot = row
                    .field_mut(*field)
                    .ok_or_else(|| bad(format!("field {field} out of range")))?;
                match slot {
                    FieldValue::Str(s) => {
                        let mut out = String::with_capacity(prefix.len() + s.len());
                        out.push_str(prefix);
                        out.push_str(s);
                        out.truncate(*max_len);
                        *s = out;
                        Ok(())
                    }
                    other => Err(bad(format!("ConcatStr on non-Str field {other:?}"))),
                }
            }
            Operation::SetRow { row: new_row } => {
                *row = new_row.clone();
                Ok(())
            }
            Operation::Multi { ops } => {
                for op in ops {
                    op.apply(row)?;
                }
                Ok(())
            }
        }
    }

    /// Approximate wire size of the operation — what operation replication
    /// ships instead of the full row.
    pub fn wire_size(&self) -> usize {
        let payload = match self {
            Operation::SetField { value, .. } => value.wire_size(),
            Operation::AddI64 { .. } | Operation::AddF64 { .. } => 8,
            Operation::ConcatStr { prefix, .. } => 4 + prefix.len(),
            Operation::SetRow { row } => row.wire_size(),
            Operation::Multi { ops } => ops.iter().map(Operation::wire_size).sum(),
        };
        // field index + discriminant overhead
        payload + 8
    }

    /// Byzantine corruption of the operation's payload: flips a bit of the
    /// carried value/delta (or mutates the carried string/row), so a
    /// corrupted operation-replication entry materialises a wrong row on
    /// the replica that applies it. Returns `false` only for an empty
    /// `Multi`.
    pub fn corrupt(&mut self, salt: u64) -> bool {
        match self {
            Operation::SetField { value, .. } => value.corrupt(salt),
            Operation::AddI64 { delta, .. } => {
                *delta ^= 1 << ((salt >> 16) % 63);
                true
            }
            Operation::AddF64 { delta, .. } => {
                *delta = f64::from_bits(delta.to_bits() ^ (1 << ((salt >> 16) % 52)));
                true
            }
            Operation::ConcatStr { prefix, .. } => {
                prefix.push('\u{7}');
                true
            }
            Operation::SetRow { row } => row.corrupt(salt),
            Operation::Multi { ops } => match ops.len() {
                0 => false,
                n => ops[(salt >> 4) as usize % n].corrupt(salt),
            },
        }
    }
}

/// Convenience macro-free builder for rows in tests and loaders.
pub fn row(fields: impl IntoIterator<Item = FieldValue>) -> Row {
    Row::new(fields.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        row([
            FieldValue::U64(42),
            FieldValue::I64(-7),
            FieldValue::F64(3.5),
            FieldValue::Str("hello".into()),
            FieldValue::Bytes(vec![1, 2, 3]),
        ])
    }

    #[test]
    fn row_accessors() {
        let r = sample_row();
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert_eq!(r.field(0).unwrap().as_u64(), Some(42));
        assert_eq!(r.field(1).unwrap().as_i64(), Some(-7));
        assert_eq!(r.field(2).unwrap().as_f64(), Some(3.5));
        assert_eq!(r.field(3).unwrap().as_str(), Some("hello"));
        assert_eq!(r.field(4).unwrap().as_bytes(), Some(&[1u8, 2, 3][..]));
        assert!(r.field(5).is_none());
    }

    #[test]
    fn wire_size_counts_payload() {
        let r = sample_row();
        // 4 header + 8 + 8 + 8 + (4+5) + (4+3)
        assert_eq!(r.wire_size(), 4 + 8 + 8 + 8 + 9 + 7);
    }

    #[test]
    fn set_field_operation() {
        let mut r = sample_row();
        Operation::SetField { field: 0, value: FieldValue::U64(99) }.apply(&mut r).unwrap();
        assert_eq!(r.field(0).unwrap().as_u64(), Some(99));
    }

    #[test]
    fn add_i64_operation() {
        let mut r = sample_row();
        Operation::AddI64 { field: 1, delta: 10 }.apply(&mut r).unwrap();
        assert_eq!(r.field(1).unwrap().as_i64(), Some(3));
    }

    #[test]
    fn add_f64_operation() {
        let mut r = sample_row();
        Operation::AddF64 { field: 2, delta: 0.5 }.apply(&mut r).unwrap();
        assert_eq!(r.field(2).unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn concat_str_truncates() {
        let mut r = sample_row();
        Operation::ConcatStr { field: 3, prefix: "abc|".into(), max_len: 6 }.apply(&mut r).unwrap();
        assert_eq!(r.field(3).unwrap().as_str(), Some("abc|he"));
    }

    #[test]
    fn set_row_overwrites_everything() {
        let mut r = sample_row();
        let new = row([FieldValue::U64(1)]);
        Operation::SetRow { row: new.clone() }.apply(&mut r).unwrap();
        assert_eq!(r, new);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut r = sample_row();
        let err = Operation::AddI64 { field: 0, delta: 1 }.apply(&mut r).unwrap_err();
        assert!(err.message.contains("AddI64"));
        let err = Operation::ConcatStr { field: 0, prefix: "x".into(), max_len: 10 }
            .apply(&mut r)
            .unwrap_err();
        assert!(err.message.contains("ConcatStr"));
    }

    #[test]
    fn out_of_range_field_is_an_error() {
        let mut r = sample_row();
        let err =
            Operation::SetField { field: 10, value: FieldValue::U64(0) }.apply(&mut r).unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn multi_operation_applies_in_order() {
        let mut r = sample_row();
        Operation::Multi {
            ops: vec![
                Operation::AddI64 { field: 1, delta: 10 },
                Operation::AddF64 { field: 2, delta: 1.0 },
                Operation::ConcatStr { field: 3, prefix: "a|".into(), max_len: 100 },
            ],
        }
        .apply(&mut r)
        .unwrap();
        assert_eq!(r.field(1).unwrap().as_i64(), Some(3));
        assert_eq!(r.field(2).unwrap().as_f64(), Some(4.5));
        assert_eq!(r.field(3).unwrap().as_str(), Some("a|hello"));
        // An error in the middle of a Multi is surfaced.
        let err = Operation::Multi { ops: vec![Operation::AddI64 { field: 0, delta: 1 }] }
            .apply(&mut r)
            .unwrap_err();
        assert!(err.message.contains("AddI64"));
    }

    #[test]
    fn operation_wire_size_is_much_smaller_than_row_for_concat() {
        // The TPC-C Payment motivation: a 500-character C_DATA field vs a
        // short concatenated prefix.
        let big = row([FieldValue::Str("x".repeat(500))]);
        let op = Operation::ConcatStr { field: 0, prefix: "short".into(), max_len: 500 };
        assert!(op.wire_size() * 10 < big.wire_size());
    }
}
