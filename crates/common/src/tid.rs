//! Transaction identifiers (TIDs) and epochs.
//!
//! STAR inherits Silo's TID design: a 64-bit word with the global epoch in
//! the high bits and a per-thread sequence number in the low bits. A TID is
//! assigned to a transaction *after* successful validation and must satisfy
//! three rules (Section 3 of the paper):
//!
//! 1. it is larger than the TID of any record in the transaction's read or
//!    write set;
//! 2. it is larger than the last TID chosen by the same worker thread;
//! 3. it lies in the current global epoch.
//!
//! Rules (1) and (2) guarantee that TIDs of transactions with conflicting
//! writes are assigned in a serial-equivalent order, which is what makes the
//! Thomas write rule safe for asynchronously replicated writes. Rule (3) makes
//! the epoch (phase) boundary a group-commit boundary.

use std::fmt;

/// A global epoch number. In STAR each phase switch increments the epoch, so
/// an epoch corresponds to one partitioned or single-master phase.
pub type Epoch = u32;

/// Number of low bits reserved for the per-epoch sequence number.
pub const SEQUENCE_BITS: u32 = 40;

/// Mask extracting the sequence number from a raw TID word.
pub const SEQUENCE_MASK: u64 = (1 << SEQUENCE_BITS) - 1;

/// A transaction identifier with an embedded epoch.
///
/// `Tid` is a plain value type; the storage layer packs it into an atomic
/// word together with a lock bit (see `star-storage`). `Tid::ZERO` tags
/// records that have never been written by a committed transaction (e.g. rows
/// created at load time).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tid(u64);

impl Tid {
    /// The smallest TID; used for freshly loaded records.
    pub const ZERO: Tid = Tid(0);

    /// Builds a TID from an epoch and a sequence number.
    ///
    /// # Panics
    /// Panics if `sequence` does not fit in [`SEQUENCE_BITS`] bits.
    pub fn new(epoch: Epoch, sequence: u64) -> Self {
        assert!(sequence <= SEQUENCE_MASK, "sequence {sequence} overflows {SEQUENCE_BITS} bits");
        Tid(((epoch as u64) << SEQUENCE_BITS) | sequence)
    }

    /// Reconstructs a TID from its raw 64-bit representation.
    pub const fn from_raw(raw: u64) -> Self {
        Tid(raw)
    }

    /// The raw 64-bit representation (epoch in the high bits).
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The epoch embedded in this TID.
    pub const fn epoch(self) -> Epoch {
        (self.0 >> SEQUENCE_BITS) as Epoch
    }

    /// The per-epoch sequence number.
    pub const fn sequence(self) -> u64 {
        self.0 & SEQUENCE_MASK
    }

    /// Returns the next TID within the same epoch.
    pub fn next(self) -> Self {
        Tid(self.0 + 1)
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tid(e{}, s{})", self.epoch(), self.sequence())
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.epoch(), self.sequence())
    }
}

/// Per-worker-thread TID generator implementing the three Silo/STAR rules.
///
/// Each worker owns one generator; there is no shared-memory coordination
/// between workers when choosing TIDs, which is what lets the single-master
/// phase scale across cores.
#[derive(Debug, Clone)]
pub struct TidGenerator {
    last: Tid,
}

impl Default for TidGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl TidGenerator {
    /// Creates a generator whose first TID will be in whatever epoch is
    /// supplied at generation time.
    pub fn new() -> Self {
        TidGenerator { last: Tid::ZERO }
    }

    /// The last TID this generator handed out.
    pub fn last(&self) -> Tid {
        self.last
    }

    /// Chooses a commit TID for a transaction.
    ///
    /// * `epoch` — the current global epoch (rule 3);
    /// * `max_observed` — the largest TID over the transaction's read and
    ///   write sets (rule 1); pass [`Tid::ZERO`] for blind writes.
    ///
    /// The returned TID is strictly larger than both `max_observed` and the
    /// last TID returned by this generator (rule 2), and carries `epoch`.
    pub fn generate(&mut self, epoch: Epoch, max_observed: Tid) -> Tid {
        let floor = self.last.max(max_observed);
        let candidate = if floor.epoch() >= epoch {
            // Stay monotonic even if a record from the current epoch was
            // observed: bump the sequence.
            floor.next()
        } else {
            // First TID of a new epoch for this thread.
            Tid::new(epoch, 1)
        };
        debug_assert!(candidate > max_observed);
        debug_assert!(candidate > self.last);
        self.last = candidate;
        candidate
    }

    /// Resets the generator, e.g. after a recovery that reverted an epoch.
    pub fn reset_to(&mut self, tid: Tid) {
        self.last = tid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_roundtrip_epoch_sequence() {
        let t = Tid::new(7, 1234);
        assert_eq!(t.epoch(), 7);
        assert_eq!(t.sequence(), 1234);
        assert_eq!(Tid::from_raw(t.raw()), t);
    }

    #[test]
    fn tid_ordering_is_epoch_major() {
        assert!(Tid::new(2, 0) > Tid::new(1, SEQUENCE_MASK));
        assert!(Tid::new(3, 10) > Tid::new(3, 9));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn tid_sequence_overflow_panics() {
        let _ = Tid::new(1, SEQUENCE_MASK + 1);
    }

    #[test]
    fn generator_is_monotonic_within_epoch() {
        let mut g = TidGenerator::new();
        let a = g.generate(1, Tid::ZERO);
        let b = g.generate(1, Tid::ZERO);
        let c = g.generate(1, Tid::ZERO);
        assert!(a < b && b < c);
        assert_eq!(a.epoch(), 1);
        assert_eq!(c.epoch(), 1);
    }

    #[test]
    fn generator_exceeds_observed_tids() {
        let mut g = TidGenerator::new();
        let observed = Tid::new(1, 500);
        let t = g.generate(1, observed);
        assert!(t > observed);
        assert_eq!(t.epoch(), 1);
    }

    #[test]
    fn generator_advances_epoch() {
        let mut g = TidGenerator::new();
        let a = g.generate(1, Tid::ZERO);
        let b = g.generate(2, Tid::ZERO);
        assert_eq!(a.epoch(), 1);
        assert_eq!(b.epoch(), 2);
        assert!(b > a);
    }

    #[test]
    fn generator_keeps_monotonic_across_equal_epochs_and_observed() {
        let mut g = TidGenerator::new();
        let a = g.generate(3, Tid::new(3, 77));
        let b = g.generate(3, Tid::new(3, 5));
        assert!(b > a);
        assert_eq!(b.epoch(), 3);
    }

    #[test]
    fn display_and_debug_contain_epoch_and_sequence() {
        let t = Tid::new(4, 9);
        assert_eq!(format!("{t}"), "4.9");
        assert!(format!("{t:?}").contains("e4"));
    }
}
