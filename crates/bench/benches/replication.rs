//! Micro-benchmarks of the replication pipeline: building log entries under
//! the value vs operation strategies, the binary codec, and applying entries
//! with the Thomas write rule (the Section 5 cost model).

use criterion::{criterion_group, criterion_main, Criterion};
use star::common::row::row;
use star::common::{FieldValue, Operation, ReplicationStrategy, Tid};
use star::occ::WriteEntry;
use star::replication::strategy::{build_log_entries, ExecutionPhase};
use star::replication::{LogEntry, Payload};
use star::storage::{DatabaseBuilder, TableSpec};

fn payment_like_write_set() -> Vec<WriteEntry> {
    // A TPC-C Payment-style customer update: heavy C_DATA field, cheap op.
    vec![WriteEntry {
        table: 0,
        partition: 0,
        key: 1,
        row: row([FieldValue::U64(1), FieldValue::F64(-42.0), FieldValue::Str("x".repeat(500))]),
        operation: Some(Operation::Multi {
            ops: vec![
                Operation::AddF64 { field: 1, delta: -42.0 },
                Operation::ConcatStr { field: 2, prefix: "1 2 3 4 5 42.00|".into(), max_len: 500 },
            ],
        }),
        insert: false,
    }]
}

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication");
    let write_set = payment_like_write_set();

    group.bench_function("build_entries_value", |b| {
        b.iter(|| {
            build_log_entries(
                &write_set,
                Tid::new(1, 1),
                ReplicationStrategy::Value,
                ExecutionPhase::Partitioned,
            )
        })
    });

    group.bench_function("build_entries_operation", |b| {
        b.iter(|| {
            build_log_entries(
                &write_set,
                Tid::new(1, 1),
                ReplicationStrategy::Hybrid,
                ExecutionPhase::Partitioned,
            )
        })
    });

    let value_entry = LogEntry {
        table: 0,
        partition: 0,
        key: 1,
        tid: Tid::new(1, 1),
        payload: Payload::Value(row([FieldValue::Str("x".repeat(500))])),
    };
    group.bench_function("codec_roundtrip_value_500B", |b| {
        b.iter(|| {
            let mut bytes = value_entry.encode_to_bytes();
            LogEntry::decode(&mut bytes).unwrap()
        })
    });

    let db = DatabaseBuilder::new(1).table(TableSpec::new("t")).build();
    db.insert(0, 0, 1, row([FieldValue::Str("x".repeat(500))])).unwrap();
    group.bench_function("apply_thomas_value", |b| {
        let mut seq = 1u64;
        b.iter(|| {
            let entry = LogEntry {
                table: 0,
                partition: 0,
                key: 1,
                tid: Tid::new(1, seq),
                payload: Payload::Value(row([FieldValue::Str("y".repeat(500))])),
            };
            seq += 1;
            entry.apply(&db).unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
