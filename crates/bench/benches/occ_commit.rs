//! Micro-benchmarks of the OCC commit path: the cost behind every throughput
//! figure (single-master phase commit, partitioned-phase commit, validation
//! failure).

use criterion::{criterion_group, criterion_main, Criterion};
use star::common::row::row;
use star::common::{FieldValue, TidGenerator};
use star::occ::{commit_partitioned, commit_single_master, TxnCtx};
use star::storage::{Database, DatabaseBuilder, TableSpec};

fn database() -> Database {
    let db = DatabaseBuilder::new(4).table(TableSpec::new("t")).build();
    for p in 0..4usize {
        for k in 0..10_000u64 {
            db.insert(0, p, (p as u64) << 32 | k, row([FieldValue::U64(k)])).unwrap();
        }
    }
    db
}

fn bench_occ(c: &mut Criterion) {
    let db = database();
    let mut group = c.benchmark_group("occ_commit");

    group.bench_function("single_master_rmw10", |b| {
        let mut tid_gen = TidGenerator::new();
        let mut key = 0u64;
        b.iter(|| {
            let mut ctx = TxnCtx::new(&db);
            for i in 0..10u64 {
                let k = (key + i * 37) % 10_000;
                let r = ctx.read(0, 0, k).unwrap();
                ctx.update(0, 0, k, r);
            }
            key = (key + 1) % 10_000;
            let (rs, ws) = ctx.into_sets();
            commit_single_master(&db, rs, ws, 1, &mut tid_gen).unwrap();
        })
    });

    group.bench_function("partitioned_rmw10", |b| {
        let mut tid_gen = TidGenerator::new();
        let mut key = 0u64;
        b.iter(|| {
            let mut ctx = TxnCtx::new_single_threaded(&db);
            for i in 0..10u64 {
                let k = (1u64 << 32) | ((key + i * 37) % 10_000);
                let r = ctx.read(0, 1, k).unwrap();
                ctx.update(0, 1, k, r);
            }
            key = (key + 1) % 10_000;
            let (rs, ws) = ctx.into_sets();
            commit_partitioned(&db, rs, ws, 1, &mut tid_gen).unwrap();
        })
    });

    group.bench_function("read_only_10", |b| {
        let mut tid_gen = TidGenerator::new();
        b.iter(|| {
            let mut ctx = TxnCtx::new(&db);
            for i in 0..10u64 {
                ctx.read(0, 2, (2u64 << 32) | (i * 991 % 10_000)).unwrap();
            }
            let (rs, ws) = ctx.into_sets();
            commit_single_master(&db, rs, ws, 1, &mut tid_gen).unwrap();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_occ);
criterion_main!(benches);
