//! Benchmark of one full phase-switching iteration (partitioned phase +
//! fence + single-master phase + fence) — the overhead measured in Figure 14.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn engine(iteration: Duration) -> StarEngine {
    let config = ClusterConfig::builder()
        .nodes(4)
        .partitions(4)
        .workers_per_node(1)
        .iteration(iteration)
        .network_latency(Duration::from_micros(20))
        .build()
        .unwrap();
    let workload = Arc::new(YcsbWorkload::new(YcsbConfig {
        partitions: 4,
        rows_per_partition: 500,
        cross_partition_fraction: 0.10,
        ..Default::default()
    }));
    StarEngine::new(config, workload).unwrap()
}

fn bench_phase_switch(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_switch");
    group.sample_size(10);
    for ms in [1u64, 5, 10] {
        group.bench_with_input(BenchmarkId::new("iteration", ms), &ms, |b, &ms| {
            let mut eng = engine(Duration::from_millis(ms));
            b.iter(|| eng.run_iteration());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phase_switch);
criterion_main!(benches);
