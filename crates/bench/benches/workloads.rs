//! Benchmarks of the workload generators and stored procedures themselves
//! (TPC-C NewOrder / Payment execution, YCSB transaction generation), which
//! bound the per-transaction work every engine performs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use star::core::Workload as _;
use star::occ::TxnCtx;
use star::prelude::*;
use star::storage::DatabaseBuilder;
use std::sync::Arc;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");

    // YCSB generation + execution.
    let ycsb = Arc::new(YcsbWorkload::new(YcsbConfig {
        partitions: 4,
        rows_per_partition: 5_000,
        ..Default::default()
    }));
    let mut builder = DatabaseBuilder::new(4);
    for spec in ycsb.catalog() {
        builder = builder.table(spec);
    }
    let ycsb_db = builder.build();
    for p in 0..4 {
        ycsb.load_partition(&ycsb_db, p);
    }
    group.bench_function("ycsb_generate", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| ycsb.single_partition_transaction(&mut rng, 0));
    });
    group.bench_function("ycsb_execute", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let txn = ycsb.single_partition_transaction(&mut rng, 1);
            let mut ctx = TxnCtx::new(&ycsb_db);
            txn.execute(&mut ctx).unwrap();
            ctx.into_sets()
        });
    });

    // TPC-C generation + execution.
    let tpcc = Arc::new(TpccWorkload::new(TpccConfig { warehouses: 4, ..Default::default() }));
    let mut builder = DatabaseBuilder::new(4);
    for spec in tpcc.catalog() {
        builder = builder.table(spec);
    }
    let tpcc_db = builder.build();
    for p in 0..4 {
        tpcc.load_partition(&tpcc_db, p);
    }
    group.bench_function("tpcc_generate", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| tpcc.single_partition_transaction(&mut rng, 0));
    });
    group.bench_function("tpcc_execute_mix", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let txn = tpcc.mixed_transaction(&mut rng, 2);
            let mut ctx = TxnCtx::new(&tpcc_db);
            let _ = txn.execute(&mut ctx);
            ctx.into_sets()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
