//! Concurrency regression guard for STAR's thread scaling.
//!
//! The seed repository's thread sweep collapsed when worker threads grew
//! (t2 46.7k → t4 33.1k txns/sec): pure spin-wait loops in the record hot
//! path burned whole scheduler quanta whenever a lock holder was preempted
//! on an oversubscribed host. This test pins the fix at quick scale: running
//! STAR with more worker threads must never cost a large fraction of the
//! throughput the same configuration reaches with fewer threads.

use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn throughput_with_workers(workers: usize) -> f64 {
    let config = ClusterConfig::builder()
        .nodes(4)
        .workers_per_node(workers)
        .partitions(8)
        .iteration(Duration::from_millis(10))
        .network_latency(Duration::from_micros(50))
        .seed(0)
        .build()
        .expect("bench cluster configuration is valid");
    let workload: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(YcsbConfig {
        partitions: 8,
        rows_per_partition: 500,
        cross_partition_fraction: 0.10,
        ..Default::default()
    }));
    // Two measured windows per thread count, keeping the better one: the
    // guard checks the scaling shape, not scheduler luck on a busy CI host.
    (0..2)
        .map(|_| {
            StarEngine::new(config.clone(), Arc::clone(&workload))
                .expect("STAR construction failed")
                .run_for(Duration::from_millis(150))
                .throughput
        })
        .fold(0.0, f64::max)
}

#[test]
fn star_throughput_does_not_collapse_with_more_worker_threads() {
    let two = throughput_with_workers(2);
    let four = throughput_with_workers(4);
    assert!(two > 0.0, "2-worker run committed nothing");
    // The seed repo's collapse was ~-29% from the scaling peak; a generous
    // noise margin keeps this green on loaded single-core CI runners while
    // still catching a real spin-wait regression.
    assert!(
        four >= two * 0.75,
        "STAR thread-scaling collapse: 4 workers {four:.0} txns/sec vs 2 workers {two:.0}"
    );
}
