//! Benchmark harness for the STAR reproduction.
//!
//! The [`figures`](crate::figures) module regenerates every table and figure
//! of the paper's evaluation (Section 7) from the engines in this workspace;
//! the `figures` binary drives it from the command line:
//!
//! ```bash
//! cargo run --release -p star-bench --bin figures -- all        # everything
//! cargo run --release -p star-bench --bin figures -- fig11a     # one figure
//! cargo run --release -p star-bench --bin figures -- --quick all
//! ```
//!
//! Criterion micro-benchmarks (`cargo bench -p star-bench`) cover the
//! component costs behind those figures: the OCC commit path, replication
//! encode/apply, the phase-switch fence and the workload generators.

#![warn(missing_docs)]

pub mod figures;

pub use figures::{FigureRunner, Scale};
