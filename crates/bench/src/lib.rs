//! Benchmark harness for the STAR reproduction.
//!
//! The [`figures`](crate::figures) module regenerates every table and figure
//! of the paper's evaluation (Section 7) from the engines in this workspace;
//! the `figures` binary drives it from the command line:
//!
//! ```bash
//! cargo run --release -p star-bench --bin figures -- all        # everything
//! cargo run --release -p star-bench --bin figures -- fig11a     # one figure
//! cargo run --release -p star-bench --bin figures -- --quick all
//! ```
//!
//! The [`suite`](crate::suite) module is the repo's own benchmark-regression
//! harness, driven by the `star-bench` binary: deterministic YCSB and TPC-C
//! sweeps across all five engines emitting the canonical `BENCH_ycsb.json` /
//! `BENCH_tpcc.json` trajectory files, a contention microbenchmark for the
//! sharded storage index, and the baseline comparison CI's `bench-smoke` job
//! gates on:
//!
//! ```bash
//! cargo run --release -p star-bench --bin star-bench -- --quick --seed 42
//! cargo run --release -p star-bench --bin star-bench -- --quick --check
//! ```
//!
//! Criterion micro-benchmarks (`cargo bench -p star-bench`) cover the
//! component costs behind those figures: the OCC commit path, replication
//! encode/apply, the phase-switch fence and the workload generators.

#![warn(missing_docs)]

pub mod figures;
pub mod suite;

pub use figures::{FigureRunner, Scale};
pub use suite::{BenchPoint, BenchSuite, ContentionReport};
