//! `star-bench` — the repo's benchmark-regression harness.
//!
//! Runs deterministic YCSB and TPC-C throughput/latency sweeps across all
//! five engines and emits the canonical `BENCH_ycsb.json` / `BENCH_tpcc.json`
//! trajectory files, plus the index-contention microbenchmark guarding the
//! sharded storage hot path.
//!
//! ```bash
//! cargo run --release -p star-bench --bin star-bench                 # full run
//! cargo run --release -p star-bench --bin star-bench -- --quick     # CI smoke
//! cargo run --release -p star-bench --bin star-bench -- --quick --seed 42
//! cargo run --release -p star-bench --bin star-bench -- --quick --check
//! cargo run --release -p star-bench --bin star-bench -- --contention-only
//! ```
//!
//! `--check` compares the fresh sweep against the `BENCH_*.json` committed in
//! `--out-dir` *before* overwriting them, and exits non-zero when any
//! engine/workload/cross-partition point lost more throughput than
//! `--max-regression` allows (default 25%). With `--threads-sweep` it also
//! fails when STAR's throughput drops non-monotonically as worker threads
//! grow (beyond a small noise tolerance), baseline or not. `--zipf-sweep`
//! adds the hot-key contention lane (`BENCH_ycsb_zipf.json`), sweeping the
//! YCSB Zipfian skew from uniform to θ = 0.99.

use star_bench::suite::{
    check_against_baseline, check_thread_monotonicity, contention_microbench, parse_baseline,
    BenchPoint, BenchSuite, MONOTONICITY_TOLERANCE,
};
use star_bench::Scale;
use std::path::{Path, PathBuf};
use std::time::Duration;

struct Options {
    scale: Scale,
    seed: u64,
    out_dir: PathBuf,
    check: bool,
    max_regression: f64,
    contention_only: bool,
    skip_contention: bool,
    threads: usize,
    threads_sweep: bool,
    zipf_sweep: bool,
    profile: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: star-bench [--quick] [--seed N] [--out-dir DIR] [--check] \
         [--max-regression FRACTION] [--threads N] [--threads-sweep] [--zipf-sweep] \
         [--profile] [--contention-only] [--skip-contention]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        scale: Scale::Full,
        seed: 0,
        out_dir: PathBuf::from("."),
        check: false,
        max_regression: 0.25,
        contention_only: false,
        skip_contention: false,
        threads: 8,
        threads_sweep: false,
        zipf_sweep: false,
        profile: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.scale = Scale::Quick,
            "--seed" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed requires an integer");
                    usage();
                };
                options.seed = value;
            }
            "--out-dir" => {
                let Some(value) = args.next() else {
                    eprintln!("--out-dir requires a path");
                    usage();
                };
                options.out_dir = PathBuf::from(value);
            }
            "--check" => options.check = true,
            "--max-regression" => {
                let Some(value) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--max-regression requires a fraction (e.g. 0.25)");
                    usage();
                };
                if !(0.0..1.0).contains(&value) {
                    eprintln!("--max-regression must be in [0, 1)");
                    usage();
                }
                options.max_regression = value;
            }
            "--threads" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()).filter(|v| *v > 0)
                else {
                    eprintln!("--threads requires a positive integer");
                    usage();
                };
                options.threads = value;
            }
            "--contention-only" => options.contention_only = true,
            "--skip-contention" => options.skip_contention = true,
            "--threads-sweep" => options.threads_sweep = true,
            "--zipf-sweep" => options.zipf_sweep = true,
            "--profile" => options.profile = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    options
}

fn run_contention(options: &Options) {
    let window = match options.scale {
        Scale::Quick => Duration::from_millis(200),
        Scale::Full => Duration::from_millis(800),
    };
    println!(
        "contention microbenchmark: {} threads, single partition, uniform keys",
        options.threads
    );
    let report = contention_microbench(options.threads, window, options.seed);
    println!("  pre-shard index : {:>12.0} ops/sec (1 lock, SipHash)", report.legacy_ops_per_sec);
    println!(
        "  sharded index   : {:>12.0} ops/sec ({} shards, fixed-key hash)",
        report.sharded_ops_per_sec, report.shards
    );
    println!("  speedup         : {:.2}x", report.speedup);
    let json = serde_json::to_string_pretty(&report).expect("contention report serializes");
    let path = options.out_dir.join("BENCH_contention.json");
    std::fs::write(&path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("  wrote {}", path.display());
}

/// Loads a committed baseline. Under `--check` a missing or unparseable
/// baseline is a hard error: silently skipping would leave the CI gate
/// green while checking nothing.
fn load_baseline(path: &Path) -> Vec<BenchPoint> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!(
            "--check requires a committed baseline, but {} cannot be read: {e}\n\
             (regenerate with `make bench-baseline` and commit the result)",
            path.display()
        );
        std::process::exit(1);
    });
    parse_baseline(&text).unwrap_or_else(|e| {
        eprintln!("--check baseline {} is unparseable: {e}", path.display());
        std::process::exit(1);
    })
}

/// Runs every engine once and prints the five-slice latency-source breakdown
/// as a table, in µs per committed transaction (the `just profile` target).
fn run_profile(options: &Options) {
    let mut suite = BenchSuite::new(options.scale, options.seed);
    println!("latency-source profile (ycsb @ 10% cross-partition, seed {}):\n", options.seed);
    let reports = suite.profile("ycsb", 10.0);
    println!(
        "\n{:<16} {:>11} {:>11} {:>11} {:>11} {:>14}   (µs/txn)",
        "engine", "execution", "fence_wait", "repl_flush", "wal_fsync", "lock/validate"
    );
    for report in &reports {
        let committed = report.counters.committed.max(1) as f64;
        let b = report.breakdown();
        println!(
            "{:<16} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>14.1}",
            report.engine,
            b.execution_us as f64 / committed,
            b.fence_wait_us as f64 / committed,
            b.replication_flush_us as f64 / committed,
            b.wal_fsync_us as f64 / committed,
            b.lock_or_validate_us as f64 / committed,
        );
    }
}

fn main() {
    let options = parse_options();

    if options.profile {
        run_profile(&options);
        return;
    }

    if !options.contention_only && options.scale == Scale::Full {
        println!("running at full scale; use --quick for a smoke-test run\n");
    }

    if !options.skip_contention {
        run_contention(&options);
        println!();
    }
    if options.contention_only {
        return;
    }

    const WORKLOADS: [&str; 2] = ["ycsb", "tpcc"];

    // Validate the committed baselines up front so a missing file fails
    // before the sweeps burn minutes of measurement time.
    let baselines: Vec<Option<Vec<BenchPoint>>> = WORKLOADS
        .iter()
        .map(|workload| {
            options
                .check
                .then(|| load_baseline(&options.out_dir.join(format!("BENCH_{workload}.json"))))
        })
        .collect();

    let mut suite = BenchSuite::new(options.scale, options.seed);
    let mut failures = Vec::new();
    for (workload, baseline) in WORKLOADS.into_iter().zip(baselines) {
        let points = suite.sweep(workload);
        let path = options.out_dir.join(format!("BENCH_{workload}.json"));
        if let Some(baseline) = baseline {
            failures.extend(check_against_baseline(&points, &baseline, options.max_regression));
        }
        std::fs::write(&path, BenchSuite::to_json(&points)).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("  wrote {} ({} points)\n", path.display(), points.len());
    }

    let mut monotonicity_violations = Vec::new();
    if options.threads_sweep {
        let path = options.out_dir.join("BENCH_threads.json");
        // The thread-scaling lane gates like the main sweeps: against its own
        // committed baseline, when one exists. A missing baseline skips the
        // check (the lane is opt-in, unlike the always-on workload sweeps).
        let baseline = options
            .check
            .then(|| std::fs::read_to_string(&path).ok().and_then(|t| parse_baseline(&t).ok()))
            .flatten();
        let points = suite.thread_scaling("ycsb");
        if let Some(baseline) = baseline {
            failures.extend(check_against_baseline(&points, &baseline, options.max_regression));
        }
        // The structural gate on this PR's headline fix: STAR throughput must
        // not collapse as worker threads grow, regardless of any baseline.
        if options.check {
            monotonicity_violations = check_thread_monotonicity(&points, MONOTONICITY_TOLERANCE);
        }
        std::fs::write(&path, BenchSuite::to_json(&points)).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("  wrote {} ({} points)\n", path.display(), points.len());
    }

    if options.zipf_sweep {
        let path = options.out_dir.join("BENCH_ycsb_zipf.json");
        // The hot-key contention lane gates exactly like the thread lane.
        let baseline = options
            .check
            .then(|| std::fs::read_to_string(&path).ok().and_then(|t| parse_baseline(&t).ok()))
            .flatten();
        let points = suite.zipf_scaling();
        if let Some(baseline) = baseline {
            failures.extend(check_against_baseline(&points, &baseline, options.max_regression));
        }
        std::fs::write(&path, BenchSuite::to_json(&points)).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("  wrote {} ({} points)\n", path.display(), points.len());
    }

    if !monotonicity_violations.is_empty() {
        eprintln!("thread-scaling monotonicity check failed:");
        for violation in &monotonicity_violations {
            eprintln!("  {violation}");
        }
        std::process::exit(1);
    }
    if !failures.is_empty() {
        eprintln!("throughput regressions beyond {:.0}% detected:", options.max_regression * 100.0);
        for regression in &failures {
            eprintln!("  {regression}");
        }
        std::process::exit(1);
    }
    if options.check {
        println!(
            "regression check passed (max allowed drop {:.0}%)",
            options.max_regression * 100.0
        );
    }
}
