//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```bash
//! cargo run --release -p star-bench --bin figures -- all
//! cargo run --release -p star-bench --bin figures -- fig11a fig11b
//! cargo run --release -p star-bench --bin figures -- --quick all
//! cargo run --release -p star-bench --bin figures -- --json results.json fig12
//! ```

use star_bench::{FigureRunner, Scale};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_path: Option<String> = None;

    let mut figures = Vec::new();
    while let Some(arg) = args.first().cloned() {
        match arg.as_str() {
            "--quick" => {
                scale = Scale::Quick;
                args.remove(0);
            }
            "--json" => {
                args.remove(0);
                if args.is_empty() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
                json_path = Some(args.remove(0));
            }
            _ => {
                figures.push(args.remove(0));
            }
        }
    }
    if figures.is_empty() {
        eprintln!("usage: figures [--quick] [--json PATH] <figure>...");
        eprintln!("figures: {} all", FigureRunner::all_figures().join(" "));
        std::process::exit(2);
    }

    let mut runner = FigureRunner::new(scale);
    for figure in &figures {
        if !runner.run(figure) {
            eprintln!("unknown figure: {figure}");
            eprintln!("figures: {} all", FigureRunner::all_figures().join(" "));
            std::process::exit(2);
        }
        println!();
    }

    if let Some(path) = json_path {
        std::fs::write(&path, runner.to_json()).expect("cannot write JSON results");
        println!("wrote {} data points to {path}", runner.points.len());
    }
}
