//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each `figN` method prints the same rows/series the paper reports, measured
//! on the simulated cluster. Absolute numbers differ from the paper's EC2
//! testbed (see `EXPERIMENTS.md`); the harness exists to reproduce the
//! *shape*: who wins, by roughly what factor, and where the crossovers fall.

use serde::Serialize;
use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// How long each engine configuration is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred milliseconds per point — smoke-test quality, used by CI
    /// and `--quick`.
    Quick,
    /// Around a second per point — the default.
    Full,
}

impl Scale {
    fn window(self) -> Duration {
        match self {
            Scale::Quick => Duration::from_millis(150),
            Scale::Full => Duration::from_millis(800),
        }
    }
}

/// One measured data point, also dumped as JSON for EXPERIMENTS.md.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Figure or table identifier (e.g. `"fig11a"`).
    pub figure: String,
    /// Series label (engine name).
    pub series: String,
    /// X coordinate (cross-partition %, node count, iteration time ...).
    pub x: f64,
    /// Throughput in transactions per second (or model value).
    pub throughput: f64,
    /// 50th percentile latency in microseconds, when measured.
    pub p50_us: Option<u64>,
    /// 99th percentile latency in microseconds, when measured.
    pub p99_us: Option<u64>,
    /// Replication bytes shipped per committed transaction, when measured.
    pub replication_bytes_per_txn: Option<f64>,
}

/// Drives the per-figure experiments.
pub struct FigureRunner {
    scale: Scale,
    /// Collected data points (dumped as JSON at the end of a run).
    pub points: Vec<Point>,
}

const CROSS_PCTS: [f64; 6] = [0.0, 10.0, 30.0, 50.0, 70.0, 100.0];

impl FigureRunner {
    /// Creates a runner at the given scale.
    pub fn new(scale: Scale) -> Self {
        FigureRunner { scale, points: Vec::new() }
    }

    fn cluster(&self, nodes: usize) -> ClusterConfig {
        ClusterConfig::builder()
            .nodes(nodes)
            .workers_per_node(2)
            .partitions(nodes * 2)
            .iteration(Duration::from_millis(10))
            .network_latency(Duration::from_micros(50))
            .build()
            .expect("figure cluster config is valid")
    }

    fn ycsb(&self, partitions: usize, cross_pct: f64) -> Arc<YcsbWorkload> {
        let rows = match self.scale {
            Scale::Quick => 500,
            Scale::Full => 5_000,
        };
        Arc::new(YcsbWorkload::new(YcsbConfig {
            partitions,
            rows_per_partition: rows,
            cross_partition_fraction: cross_pct / 100.0,
            ..Default::default()
        }))
    }

    fn tpcc(&self, warehouses: usize, cross_pct: f64) -> Arc<TpccWorkload> {
        let (districts, customers, items) = match self.scale {
            Scale::Quick => (3, 20, 100),
            Scale::Full => (10, 120, 1_000),
        };
        Arc::new(TpccWorkload::new(TpccConfig {
            warehouses,
            districts_per_warehouse: districts,
            customers_per_district: customers,
            items,
            cross_partition_fraction: cross_pct / 100.0,
            ..Default::default()
        }))
    }

    fn record(&mut self, figure: &str, series: &str, x: f64, report: &RunReport) {
        println!(
            "  [{figure}] {series:<18} x={x:>6.1}  {:>12.0} txns/sec  p50={:?} p99={:?}",
            report.throughput,
            report.latency.p50(),
            report.latency.p99()
        );
        self.points.push(Point {
            figure: figure.to_string(),
            series: series.to_string(),
            x,
            throughput: report.throughput,
            p50_us: Some(report.latency.p50().as_micros() as u64),
            p99_us: Some(report.latency.p99().as_micros() as u64),
            replication_bytes_per_txn: Some(
                report.counters.replication_bytes as f64 / report.counters.committed.max(1) as f64,
            ),
        });
    }

    fn record_model(&mut self, figure: &str, series: &str, x: f64, value: f64) {
        println!("  [{figure}] {series:<24} x={x:>6.1}  {value:>10.3}");
        self.points.push(Point {
            figure: figure.to_string(),
            series: series.to_string(),
            x,
            throughput: value,
            p50_us: None,
            p99_us: None,
            replication_bytes_per_txn: None,
        });
    }

    fn run_star(&self, config: ClusterConfig, workload: Arc<dyn Workload>) -> RunReport {
        let mut engine = StarEngine::new(config, workload).expect("STAR construction failed");
        engine.run_for(self.scale.window())
    }

    /// Figure 3: analytical speedup of STAR over a single node.
    pub fn fig3(&mut self) {
        println!("Figure 3: speedup of asymmetric replication over single-node execution (model)");
        for p in [1.0, 5.0, 10.0, 15.0] {
            let model = AnalyticalModel::new(p / 100.0, 8.0);
            for n in 1..=16usize {
                self.record_model(
                    "fig3",
                    &format!("P={p}%"),
                    n as f64,
                    model.speedup_over_single_node(n),
                );
            }
        }
    }

    /// Figure 10: analytical improvement over partitioning-based (varying K)
    /// and non-partitioned systems, n = 4.
    pub fn fig10(&mut self) {
        println!("Figure 10: improvement of STAR vs conventional designs, n=4 (model)");
        for k in [2.0, 4.0, 8.0, 16.0] {
            for pct in (0..=100).step_by(10) {
                let model = AnalyticalModel::new(pct as f64 / 100.0, k);
                self.record_model(
                    "fig10",
                    &format!("K={k}"),
                    pct as f64,
                    (model.improvement_over_partitioning(4) - 1.0) * 100.0,
                );
            }
        }
        for pct in (0..=100).step_by(10) {
            let model = AnalyticalModel::new(pct as f64 / 100.0, 4.0);
            self.record_model(
                "fig10",
                "Non-partitioned",
                pct as f64,
                (model.improvement_over_non_partitioned(4) - 1.0) * 100.0,
            );
        }
    }

    fn fig11_workload(&mut self, figure: &str, tpcc: bool, sync: bool) {
        let nodes = 4;
        for pct in CROSS_PCTS {
            let config = self.cluster(nodes);
            let workload: Arc<dyn Workload> = if tpcc {
                self.tpcc(config.partitions, pct)
            } else {
                self.ycsb(config.partitions, pct)
            };
            if !sync {
                let report = self.run_star(config.clone(), workload.clone());
                self.record(figure, "STAR", pct, &report);
            }
            let mode = if sync { ReplicationMode::Sync } else { ReplicationMode::Async };
            let bconfig =
                BaselineConfig::new(config.to_builder().replication_mode(mode).build().unwrap());

            let pb_cluster = self
                .cluster(2)
                .to_builder()
                .partitions(config.partitions)
                .replication_mode(mode)
                .build()
                .unwrap();
            let mut pb = PbOcc::new(BaselineConfig::new(pb_cluster), workload.clone()).unwrap();
            let report = pb.run_for(self.scale.window());
            self.record(figure, "PB. OCC", pct, &report);

            let mut docc = DistOcc::new(bconfig.clone(), workload.clone()).unwrap();
            let report = docc.run_for(self.scale.window());
            self.record(figure, "Dist. OCC", pct, &report);

            let mut s2pl = DistS2pl::new(bconfig, workload.clone()).unwrap();
            let report = s2pl.run_for(self.scale.window());
            self.record(figure, "Dist. S2PL", pct, &report);
        }
    }

    /// Figure 11(a): YCSB, async replication + epoch group commit.
    pub fn fig11a(&mut self) {
        println!("Figure 11(a): YCSB throughput vs % cross-partition (async replication)");
        self.fig11_workload("fig11a", false, false);
    }

    /// Figure 11(b): TPC-C, async replication + epoch group commit.
    pub fn fig11b(&mut self) {
        println!("Figure 11(b): TPC-C throughput vs % cross-partition (async replication)");
        self.fig11_workload("fig11b", true, false);
    }

    /// Figure 11(c): YCSB, synchronous replication baselines.
    pub fn fig11c(&mut self) {
        println!("Figure 11(c): YCSB throughput vs % cross-partition (sync replication baselines)");
        self.fig11_workload("fig11c", false, true);
    }

    /// Figure 11(d): TPC-C, synchronous replication baselines.
    pub fn fig11d(&mut self) {
        println!(
            "Figure 11(d): TPC-C throughput vs % cross-partition (sync replication baselines)"
        );
        self.fig11_workload("fig11d", true, true);
    }

    /// Figure 12: latency table (50th / 99th percentile) for sync and async
    /// configurations at 10/50/90% cross-partition transactions.
    pub fn fig12(&mut self) {
        println!("Figure 12: latency (p50/p99) of each approach");
        let nodes = 4;
        for pct in [10.0, 50.0, 90.0] {
            let config = self.cluster(nodes);
            let ycsb = self.ycsb(config.partitions, pct);

            let report = self.run_star(config.clone(), ycsb.clone());
            self.record("fig12", "STAR (async)", pct, &report);

            for sync in [true, false] {
                let mode = if sync { ReplicationMode::Sync } else { ReplicationMode::Async };
                let cluster = config.to_builder().replication_mode(mode).build().unwrap();
                let label = |name: &str| {
                    if sync {
                        format!("{name} (sync)")
                    } else {
                        format!("{name} (async)")
                    }
                };
                let pb_cluster = self
                    .cluster(2)
                    .to_builder()
                    .partitions(config.partitions)
                    .replication_mode(mode)
                    .build()
                    .unwrap();
                let mut pb = PbOcc::new(BaselineConfig::new(pb_cluster), ycsb.clone()).unwrap();
                let report = pb.run_for(self.scale.window());
                self.record("fig12", &label("PB. OCC"), pct, &report);

                let bconfig = BaselineConfig::new(cluster.clone());
                let mut docc = DistOcc::new(bconfig.clone(), ycsb.clone()).unwrap();
                let report = docc.run_for(self.scale.window());
                self.record("fig12", &label("Dist. OCC"), pct, &report);

                let mut s2pl = DistS2pl::new(bconfig, ycsb.clone()).unwrap();
                let report = s2pl.run_for(self.scale.window());
                self.record("fig12", &label("Dist. S2PL"), pct, &report);
            }
        }
    }

    fn fig13_workload(&mut self, figure: &str, tpcc: bool) {
        let nodes = 4;
        for pct in CROSS_PCTS {
            let config = self.cluster(nodes);
            let workload: Arc<dyn Workload> = if tpcc {
                self.tpcc(config.partitions, pct)
            } else {
                self.ycsb(config.partitions, pct)
            };
            let report = self.run_star(config.clone(), workload.clone());
            self.record(figure, "STAR", pct, &report);
            for x in [2usize, 4, 6] {
                // Scale the paper's 12-thread nodes down proportionally: with
                // fewer worker threads per node, dedicate x/2 to the lock
                // manager (minimum 1).
                let lock_managers = (x / 2).max(1);
                let mut calvin = Calvin::new(
                    BaselineConfig::new(config.clone()),
                    CalvinConfig::with_lock_managers(lock_managers),
                    workload.clone(),
                )
                .unwrap();
                let report = calvin.run_for(self.scale.window());
                self.record(figure, &format!("Calvin-{x}"), pct, &report);
            }
        }
    }

    /// Figure 13(a): STAR vs Calvin on YCSB.
    pub fn fig13a(&mut self) {
        println!("Figure 13(a): YCSB, STAR vs Calvin-x");
        self.fig13_workload("fig13a", false);
    }

    /// Figure 13(b): STAR vs Calvin on TPC-C.
    pub fn fig13b(&mut self) {
        println!("Figure 13(b): TPC-C, STAR vs Calvin-x");
        self.fig13_workload("fig13b", true);
    }

    /// Figure 14(a): throughput and phase-switch overhead vs iteration time.
    pub fn fig14a(&mut self) {
        println!("Figure 14(a): phase-switch overhead vs iteration time (YCSB)");
        let nodes = 4;
        let iterations_ms = [1u64, 2, 5, 10, 20, 50, 100];
        let mut results = Vec::new();
        for ms in iterations_ms {
            let config = self
                .cluster(nodes)
                .to_builder()
                .iteration(Duration::from_millis(ms))
                .build()
                .unwrap();
            let ycsb = self.ycsb(config.partitions, 10.0);
            let report = self.run_star(config, ycsb);
            results.push((ms, report));
        }
        // Overhead is measured against the longest iteration time, as in the
        // paper (the 200 ms reference run).
        let reference = results.last().map(|(_, r)| r.throughput).unwrap_or(1.0).max(1.0);
        for (ms, report) in results {
            self.record("fig14a", "Throughput", ms as f64, &report);
            let overhead = 100.0 * (1.0 - report.throughput / reference).max(0.0);
            self.record_model("fig14a", "Overhead (%)", ms as f64, overhead);
        }
    }

    /// Figure 14(b): phase-switch overhead vs number of nodes.
    pub fn fig14b(&mut self) {
        println!("Figure 14(b): phase-switch overhead vs cluster size (YCSB)");
        for &iteration_ms in &[10u64, 20] {
            for nodes in [2usize, 4, 8] {
                let config = self
                    .cluster(nodes)
                    .to_builder()
                    .iteration(Duration::from_millis(iteration_ms))
                    .build()
                    .unwrap();
                let ycsb = self.ycsb(config.partitions, 10.0);
                let report = self.run_star(config.clone(), ycsb.clone());
                // Reference: the same cluster with a long iteration time.
                let reference_config =
                    config.to_builder().iteration(Duration::from_millis(100)).build().unwrap();
                let reference = self.run_star(reference_config, ycsb);
                let overhead =
                    100.0 * (1.0 - report.throughput / reference.throughput.max(1.0)).max(0.0);
                self.record_model(
                    "fig14b",
                    &format!("Iteration Time ({iteration_ms}ms)"),
                    nodes as f64,
                    overhead,
                );
            }
        }
    }

    /// Figure 15(a): replication strategies on TPC-C (SYNC STAR, STAR, STAR
    /// with hybrid replication).
    pub fn fig15a(&mut self) {
        println!("Figure 15(a): replication strategies, TPC-C");
        for pct in CROSS_PCTS {
            let base = self.cluster(4);
            let tpcc = self.tpcc(base.partitions, pct);

            let sync_config = base
                .to_builder()
                .replication_mode(ReplicationMode::Sync)
                .replication_strategy(ReplicationStrategy::Value)
                .build()
                .unwrap();
            let report = self.run_star(sync_config, tpcc.clone());
            self.record("fig15a", "SYNC STAR", pct, &report);

            let value_config =
                base.to_builder().replication_strategy(ReplicationStrategy::Value).build().unwrap();
            let report = self.run_star(value_config, tpcc.clone());
            self.record("fig15a", "STAR", pct, &report);

            let hybrid_config = base
                .to_builder()
                .replication_strategy(ReplicationStrategy::Hybrid)
                .build()
                .unwrap();
            let report = self.run_star(hybrid_config, tpcc);
            self.record("fig15a", "STAR w/ Hybrid Rep.", pct, &report);
        }
    }

    /// Figure 15(b): overhead of disk logging and checkpointing.
    pub fn fig15b(&mut self) {
        println!("Figure 15(b): disk logging overhead (YCSB, TPC-C)");
        for tpcc in [false, true] {
            let label = if tpcc { "TPC-C" } else { "YCSB" };
            let base = self.cluster(4);
            let workload: Arc<dyn Workload> = if tpcc {
                self.tpcc(base.partitions, 10.0)
            } else {
                self.ycsb(base.partitions, 10.0)
            };
            let report = self.run_star(base.clone(), workload.clone());
            self.record("fig15b", &format!("STAR ({label})"), 0.0, &report);
            let logging = base.to_builder().disk_logging(true).build().unwrap();
            let report = self.run_star(logging, workload);
            self.record("fig15b", &format!("STAR + Disk logging ({label})"), 0.0, &report);
        }
    }

    fn fig16_workload(&mut self, figure: &str, tpcc: bool) {
        for nodes in [2usize, 4, 8] {
            let config = self.cluster(nodes);
            let workload: Arc<dyn Workload> = if tpcc {
                self.tpcc(config.partitions, 12.5)
            } else {
                self.ycsb(config.partitions, 10.0)
            };
            let report = self.run_star(config.clone(), workload.clone());
            self.record(figure, "STAR", nodes as f64, &report);

            let bconfig = BaselineConfig::new(config.clone());
            let mut docc = DistOcc::new(bconfig.clone(), workload.clone()).unwrap();
            let report = docc.run_for(self.scale.window());
            self.record(figure, "Dist. OCC", nodes as f64, &report);
            let mut s2pl = DistS2pl::new(bconfig.clone(), workload.clone()).unwrap();
            let report = s2pl.run_for(self.scale.window());
            self.record(figure, "Dist. S2PL", nodes as f64, &report);
            let mut calvin =
                Calvin::new(bconfig, CalvinConfig::default(), workload.clone()).unwrap();
            let report = calvin.run_for(self.scale.window());
            self.record(figure, "Calvin", nodes as f64, &report);
        }
    }

    /// Figure 16(a): scalability on YCSB.
    pub fn fig16a(&mut self) {
        println!("Figure 16(a): scalability, YCSB");
        self.fig16_workload("fig16a", false);
    }

    /// Figure 16(b): scalability on TPC-C.
    pub fn fig16b(&mut self) {
        println!("Figure 16(b): scalability, TPC-C");
        self.fig16_workload("fig16b", true);
    }

    /// Runs a figure by name; returns false if the name is unknown.
    pub fn run(&mut self, name: &str) -> bool {
        match name {
            "fig3" => self.fig3(),
            "fig10" => self.fig10(),
            "fig11a" => self.fig11a(),
            "fig11b" => self.fig11b(),
            "fig11c" => self.fig11c(),
            "fig11d" => self.fig11d(),
            "fig12" => self.fig12(),
            "fig13a" => self.fig13a(),
            "fig13b" => self.fig13b(),
            "fig14a" => self.fig14a(),
            "fig14b" => self.fig14b(),
            "fig15a" => self.fig15a(),
            "fig15b" => self.fig15b(),
            "fig16a" => self.fig16a(),
            "fig16b" => self.fig16b(),
            "all" => {
                for figure in Self::all_figures() {
                    self.run(figure);
                }
            }
            _ => return false,
        }
        true
    }

    /// Every figure the harness knows how to regenerate.
    pub fn all_figures() -> &'static [&'static str] {
        &[
            "fig3", "fig10", "fig11a", "fig11b", "fig11c", "fig11d", "fig12", "fig13a", "fig13b",
            "fig14a", "fig14b", "fig15a", "fig15b", "fig16a", "fig16b",
        ]
    }

    /// Serialises the collected points to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.points).expect("serialising points cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_figures_produce_points_without_running_engines() {
        let mut runner = FigureRunner::new(Scale::Quick);
        runner.fig3();
        runner.fig10();
        assert!(runner.points.iter().any(|p| p.figure == "fig3"));
        assert!(runner.points.iter().any(|p| p.figure == "fig10"));
        // Figure 3 has 4 series × 16 node counts.
        assert_eq!(runner.points.iter().filter(|p| p.figure == "fig3").count(), 64);
        let json = runner.to_json();
        assert!(json.contains("\"figure\": \"fig3\""));
    }

    #[test]
    fn unknown_figure_name_is_rejected() {
        let mut runner = FigureRunner::new(Scale::Quick);
        assert!(!runner.run("fig99"));
    }

    #[test]
    fn all_figures_lists_every_handler() {
        // Keep the CLI help and the dispatcher in sync.
        for figure in FigureRunner::all_figures() {
            assert_ne!(*figure, "all");
        }
        assert_eq!(FigureRunner::all_figures().len(), 15);
    }
}
