//! The regression benchmark suite behind the `star-bench` binary.
//!
//! Where [`figures`](crate::figures) regenerates the *paper's* plots, this
//! module produces the repo's own machine-readable performance trajectory:
//! deterministic YCSB and TPC-C sweeps across all five engines, emitted as
//! `BENCH_ycsb.json` / `BENCH_tpcc.json` at the repository root, plus the
//! index-contention microbenchmark that guards the sharded storage hot path.
//! CI's `bench-smoke` job re-runs the sweeps with `--quick` and fails the
//! build when throughput regresses more than a configured fraction against
//! the committed baselines.

use crate::figures::{Point, Scale};
use serde::Serialize;
use star::prelude::*;
use star::storage::{Partition, Record};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cross-partition percentages swept per workload. Deliberately a superset of
/// the interesting region: 0% exercises the pure partitioned phase, 90% is
/// dominated by the single-master phase.
pub const SWEEP_CROSS_PCTS: [f64; 4] = [0.0, 10.0, 50.0, 90.0];

/// Worker-thread counts of the thread-scaling sweep (every engine, fixed 10%
/// cross-partition mix).
pub const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Zipfian skew exponents of the hot-key contention lane: uniform, moderate,
/// heavy, and YCSB's default 0.99.
pub const ZIPF_SWEEP: [f64; 4] = [0.0, 0.7, 0.9, 0.99];

/// Relative slack allowed between consecutive STAR thread-sweep points before
/// `--check` calls the scaling non-monotonic: throughput at `t`-threads may
/// sit up to this fraction below the previous thread count's and still pass
/// (run-to-run noise, especially on small CI machines).
/// 10% absorbs single-point scheduler luck on one-core CI runners while
/// still flagging the seed repository's 29% t2→t4 collapse by a wide margin.
pub const MONOTONICITY_TOLERANCE: f64 = 0.10;

/// One canonical benchmark data point, the record schema of `BENCH_*.json`.
///
/// Besides throughput and latency percentiles, every point carries the
/// per-phase latency-source breakdown ([`PhaseBreakdown`]) normalised to
/// µs per committed transaction, versioned by `breakdown_version` so the
/// regression gate never compares incompatible slice schemas.
#[derive(Debug, Clone, Serialize)]
pub struct BenchPoint {
    /// Engine label, matching [`EngineKind::label`] (e.g. `"Dist. OCC"`).
    pub engine: String,
    /// Workload name (`"ycsb"` or `"tpcc"`).
    pub workload: String,
    /// Percentage of cross-partition transactions in the mix.
    pub cross_partition_pct: f64,
    /// Committed transactions per second over the measurement window.
    pub committed_txns_per_sec: f64,
    /// 50th percentile commit latency in microseconds.
    pub p50_commit_latency_us: u64,
    /// 99th percentile commit latency in microseconds.
    pub p99_commit_latency_us: u64,
    /// Schema version of the breakdown slices below
    /// ([`BREAKDOWN_VERSION`]; 0 in baselines predating the breakdown).
    pub breakdown_version: u32,
    /// Execution time per committed transaction, µs.
    pub execution_us_per_txn: f64,
    /// Synchronous fence/group-commit stall per committed transaction, µs.
    pub fence_wait_us_per_txn: f64,
    /// Replication apply/ship time per committed transaction, µs.
    pub replication_flush_us_per_txn: f64,
    /// WAL flush time per committed transaction, µs.
    pub wal_fsync_us_per_txn: f64,
    /// How the write-ahead log ran for this point: `"off"` (the bench
    /// clusters keep `disk_logging` disabled, so `wal_fsync_us_per_txn` is
    /// structurally zero, not a broken clock) or `"group-commit-fsync"`
    /// when a configuration enables disk logging.
    pub wal_mode: String,
    /// Lock acquisition / OCC validation time per committed transaction, µs.
    pub lock_or_validate_us_per_txn: f64,
}

impl BenchPoint {
    fn from_report(workload: &str, pct: f64, wal_mode: &str, report: &RunReport) -> Self {
        let committed = report.counters.committed.max(1) as f64;
        let breakdown = report.breakdown();
        BenchPoint {
            engine: report.engine.clone(),
            workload: workload.to_string(),
            cross_partition_pct: pct,
            committed_txns_per_sec: report.throughput,
            p50_commit_latency_us: report.latency.p50().as_micros() as u64,
            p99_commit_latency_us: report.latency.p99().as_micros() as u64,
            breakdown_version: BREAKDOWN_VERSION,
            execution_us_per_txn: breakdown.execution_us as f64 / committed,
            fence_wait_us_per_txn: breakdown.fence_wait_us as f64 / committed,
            replication_flush_us_per_txn: breakdown.replication_flush_us as f64 / committed,
            wal_fsync_us_per_txn: breakdown.wal_fsync_us as f64 / committed,
            wal_mode: wal_mode.to_string(),
            lock_or_validate_us_per_txn: breakdown.lock_or_validate_us as f64 / committed,
        }
    }

    /// The breakdown slices as `(field name, µs per txn)` pairs.
    pub fn slices(&self) -> [(&'static str, f64); 5] {
        [
            ("execution_us_per_txn", self.execution_us_per_txn),
            ("fence_wait_us_per_txn", self.fence_wait_us_per_txn),
            ("replication_flush_us_per_txn", self.replication_flush_us_per_txn),
            ("wal_fsync_us_per_txn", self.wal_fsync_us_per_txn),
            ("lock_or_validate_us_per_txn", self.lock_or_validate_us_per_txn),
        ]
    }
}

/// Runs the deterministic engine sweeps for one workload.
pub struct BenchSuite {
    scale: Scale,
    seed: u64,
    /// Raw figure-style points, kept so the suite composes with the existing
    /// JSON/plotting machinery of the figure harness.
    pub points: Vec<Point>,
}

impl BenchSuite {
    /// Creates a suite at `scale`, mixing `seed` into every engine's
    /// transaction stream.
    pub fn new(scale: Scale, seed: u64) -> Self {
        BenchSuite { scale, seed, points: Vec::new() }
    }

    fn window(&self) -> Duration {
        match self.scale {
            Scale::Quick => Duration::from_millis(150),
            Scale::Full => Duration::from_millis(800),
        }
    }

    fn cluster(&self, nodes: usize) -> ClusterConfig {
        ClusterConfig::builder()
            .nodes(nodes)
            .workers_per_node(2)
            .partitions(nodes * 2)
            .iteration(Duration::from_millis(10))
            .network_latency(Duration::from_micros(50))
            .seed(self.seed)
            .build()
            .expect("bench cluster configuration is valid")
    }

    fn ycsb(&self, partitions: usize, cross_pct: f64) -> Arc<YcsbWorkload> {
        self.ycsb_with_skew(partitions, cross_pct, 0.0)
    }

    fn ycsb_with_skew(
        &self,
        partitions: usize,
        cross_pct: f64,
        zipf_theta: f64,
    ) -> Arc<YcsbWorkload> {
        let rows = match self.scale {
            Scale::Quick => 500,
            Scale::Full => 5_000,
        };
        Arc::new(YcsbWorkload::new(YcsbConfig {
            partitions,
            rows_per_partition: rows,
            cross_partition_fraction: cross_pct / 100.0,
            zipf_theta,
            ..Default::default()
        }))
    }

    /// The WAL mode of this suite's cluster configurations (none of them
    /// enable disk logging, and the label records that explicitly).
    fn wal_mode(&self) -> &'static str {
        if self.cluster(4).disk_logging {
            "group-commit-fsync"
        } else {
            "off"
        }
    }

    fn tpcc(&self, warehouses: usize, cross_pct: f64) -> Arc<TpccWorkload> {
        let (districts, customers, items) = match self.scale {
            Scale::Quick => (3, 20, 100),
            Scale::Full => (10, 120, 1_000),
        };
        Arc::new(TpccWorkload::new(TpccConfig {
            warehouses,
            districts_per_warehouse: districts,
            customers_per_district: customers,
            items,
            cross_partition_fraction: cross_pct / 100.0,
            ..Default::default()
        }))
    }

    fn record(&mut self, workload: &str, pct: f64, report: &RunReport) -> BenchPoint {
        println!(
            "  [{workload}] {:<10} x={pct:>5.1}%  {:>12.0} txns/sec  p50={:?} p99={:?}",
            report.engine,
            report.throughput,
            report.latency.p50(),
            report.latency.p99()
        );
        self.points.push(Point {
            figure: workload.to_string(),
            series: report.engine.clone(),
            x: pct,
            throughput: report.throughput,
            p50_us: Some(report.latency.p50().as_micros() as u64),
            p99_us: Some(report.latency.p99().as_micros() as u64),
            replication_bytes_per_txn: Some(
                report.counters.replication_bytes as f64 / report.counters.committed.max(1) as f64,
            ),
        });
        BenchPoint::from_report(workload, pct, self.wal_mode(), report)
    }

    /// Builds one engine behind the unified [`Engine`] trait. Everything the
    /// suite does afterwards — running, reporting, recording — goes through
    /// the trait object; no per-engine glue survives past this constructor.
    fn build_engine(&self, engine: EngineKind, workload: Arc<dyn Workload>) -> Box<dyn Engine> {
        self.build_engine_with(engine, self.cluster(4), workload)
    }

    /// [`build_engine`](Self::build_engine) with an explicit STAR-side
    /// cluster configuration, for lanes that vary it (the thread sweep).
    fn build_engine_with(
        &self,
        engine: EngineKind,
        config: ClusterConfig,
        workload: Arc<dyn Workload>,
    ) -> Box<dyn Engine> {
        match engine {
            EngineKind::Star => {
                Box::new(StarEngine::new(config, workload).expect("STAR construction failed"))
            }
            EngineKind::PbOcc => {
                // PB. OCC runs one primary + one backup; it ignores the
                // partition layout but keeps the partition count (same key
                // space) and worker count (fair thread sweep).
                let pb_cluster = self
                    .cluster(2)
                    .to_builder()
                    .partitions(config.partitions)
                    .workers_per_node(config.workers_per_node)
                    .build()
                    .expect("PB. OCC cluster configuration is valid");
                Box::new(
                    PbOcc::new(BaselineConfig::new(pb_cluster), workload)
                        .expect("PB. OCC construction failed"),
                )
            }
            EngineKind::DistOcc => Box::new(
                DistOcc::new(BaselineConfig::new(config), workload)
                    .expect("Dist. OCC construction failed"),
            ),
            EngineKind::DistS2pl => Box::new(
                DistS2pl::new(BaselineConfig::new(config), workload)
                    .expect("Dist. S2PL construction failed"),
            ),
            EngineKind::Calvin => {
                let mut calvin =
                    Calvin::new(BaselineConfig::new(config), CalvinConfig::default(), workload)
                        .expect("Calvin construction failed");
                // Calvin-2 means two replica groups (paper Section 7.2: every
                // system runs at replication factor 2). The second group
                // re-executes each sequenced batch on its own copy; in this
                // single-process harness that work shares the same cores, so
                // the bench charges Calvin the batch-boundary replica apply —
                // cheaper than the re-execution real replicas perform, and
                // the same group-commit cost every other engine already pays.
                calvin.attach_backup();
                Box::new(calvin)
            }
        }
    }

    fn run_engine(&self, engine: EngineKind, workload: Arc<dyn Workload>) -> RunReport {
        self.build_engine(engine, workload).run_for(self.window())
    }

    fn workload_for(&self, workload_name: &str, partitions: usize, pct: f64) -> Arc<dyn Workload> {
        match workload_name {
            "tpcc" => self.tpcc(partitions, pct),
            _ => self.ycsb(partitions, pct),
        }
    }

    /// Sweeps one workload (`"ycsb"` or `"tpcc"`) across every engine and
    /// cross-partition percentage; returns the canonical points produced by
    /// this sweep.
    pub fn sweep(&mut self, workload_name: &str) -> Vec<BenchPoint> {
        let engines = [
            EngineKind::Star,
            EngineKind::PbOcc,
            EngineKind::DistOcc,
            EngineKind::DistS2pl,
            EngineKind::Calvin,
        ];
        println!("{workload_name} sweep (seed {}):", self.seed);
        let mut out = Vec::new();
        for pct in SWEEP_CROSS_PCTS {
            let partitions = self.cluster(4).partitions;
            let workload = self.workload_for(workload_name, partitions, pct);
            for engine in engines {
                let report = self.run_engine(engine, Arc::clone(&workload));
                out.push(self.record(workload_name, pct, &report));
            }
        }
        out
    }

    /// The thread-scaling lane: every engine at a fixed 10% cross-partition
    /// mix, swept across [`THREAD_SWEEP`] worker threads per node. Points
    /// are labelled `"<workload>-t<n>"` so they never collide with the
    /// cross-partition sweep in the regression gate.
    pub fn thread_scaling(&mut self, workload_name: &str) -> Vec<BenchPoint> {
        let pct = 10.0;
        let window = self.window();
        let engines = [
            EngineKind::Star,
            EngineKind::PbOcc,
            EngineKind::DistOcc,
            EngineKind::DistS2pl,
            EngineKind::Calvin,
        ];
        println!("{workload_name} thread-scaling sweep (seed {}):", self.seed);
        let mut out = Vec::new();
        for threads in THREAD_SWEEP {
            let partitions = self.cluster(4).partitions;
            let config = self
                .cluster(4)
                .to_builder()
                .workers_per_node(threads)
                .build()
                .expect("thread-sweep cluster configuration is valid");
            let label = format!("{workload_name}-t{threads}");
            let workload = self.workload_for(workload_name, partitions, pct);
            for engine in engines {
                let report = self
                    .build_engine_with(engine, config.clone(), Arc::clone(&workload))
                    .run_for(window);
                out.push(self.record(&label, pct, &report));
            }
        }
        out
    }

    /// The hot-key contention lane: every engine at a fixed 10%
    /// cross-partition mix, swept across the [`ZIPF_SWEEP`] Zipfian skew
    /// exponents. Points are labelled `"ycsb-zipf<theta>"`; θ = 0 is the
    /// uniform distribution the main sweep uses, 0.99 is YCSB's default
    /// hot-key skew.
    pub fn zipf_scaling(&mut self) -> Vec<BenchPoint> {
        let pct = 10.0;
        let engines = [
            EngineKind::Star,
            EngineKind::PbOcc,
            EngineKind::DistOcc,
            EngineKind::DistS2pl,
            EngineKind::Calvin,
        ];
        println!("ycsb zipf contention sweep (seed {}):", self.seed);
        let mut out = Vec::new();
        for theta in ZIPF_SWEEP {
            let partitions = self.cluster(4).partitions;
            let workload: Arc<dyn Workload> = self.ycsb_with_skew(partitions, pct, theta);
            let label = format!("ycsb-zipf{theta:.2}");
            for engine in engines {
                let report = self.run_engine(engine, Arc::clone(&workload));
                out.push(self.record(&label, pct, &report));
            }
        }
        out
    }

    /// Runs every engine once at `pct`% cross-partition and returns the five
    /// reports, for the latency-source profiling table (`just profile`).
    pub fn profile(&mut self, workload_name: &str, pct: f64) -> Vec<RunReport> {
        let engines = [
            EngineKind::Star,
            EngineKind::PbOcc,
            EngineKind::DistOcc,
            EngineKind::DistS2pl,
            EngineKind::Calvin,
        ];
        let partitions = self.cluster(4).partitions;
        let workload = self.workload_for(workload_name, partitions, pct);
        engines.into_iter().map(|e| self.run_engine(e, Arc::clone(&workload))).collect()
    }

    /// Serializes a sweep's points as the canonical `BENCH_*.json` document:
    /// a top-level array of [`BenchPoint`] objects.
    pub fn to_json(points: &[BenchPoint]) -> String {
        serde_json::to_string_pretty(&points.to_vec())
            .expect("serialising bench points cannot fail")
    }
}

// ---------------------------------------------------------------------------
// Contention microbenchmark
// ---------------------------------------------------------------------------

/// The seed repository's pre-shard partition index: one `RwLock<HashMap>`
/// with the standard SipHash hasher guarding every record of the partition.
/// Kept verbatim (API and all) so the contention microbenchmark measures the
/// new sharded index against exactly what it replaced.
struct LegacyPartition {
    records: parking_lot::RwLock<std::collections::HashMap<u64, Arc<Record>>>,
}

impl LegacyPartition {
    fn new() -> Self {
        LegacyPartition { records: parking_lot::RwLock::new(std::collections::HashMap::new()) }
    }

    fn get(&self, key: u64) -> Option<Arc<Record>> {
        self.records.read().get(&key).cloned()
    }

    fn insert_if_absent(&self, key: u64, record: Record) -> (Arc<Record>, bool) {
        let mut map = self.records.write();
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let rec = Arc::new(record);
                e.insert(Arc::clone(&rec));
                (rec, true)
            }
        }
    }
}

/// Result of the index-contention microbenchmark.
#[derive(Debug, Clone, Serialize)]
pub struct ContentionReport {
    /// Worker threads hammering the single partition.
    pub threads: usize,
    /// Keys in the uniform working set.
    pub keyspace: u64,
    /// Measurement window per index, in milliseconds.
    pub window_ms: u64,
    /// Operations per second against the pre-shard single-lock index.
    pub legacy_ops_per_sec: f64,
    /// Operations per second against the sharded index.
    pub sharded_ops_per_sec: f64,
    /// Shard count of the new index.
    pub shards: usize,
    /// `sharded_ops_per_sec / legacy_ops_per_sec`.
    pub speedup: f64,
}

/// Deterministic per-thread key stream: an LCG (no `rand` dependency in the
/// binary, and bit-for-bit identical across runs for a given seed).
#[inline]
fn lcg_next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

fn hammer<I: Sync>(
    index: &I,
    threads: usize,
    keyspace: u64,
    window: Duration,
    seed: u64,
    get: impl Fn(&I, u64) + Sync,
    insert: impl Fn(&I, u64) + Sync,
) -> f64 {
    let stop = AtomicBool::new(false);
    let mut total_ops = 0u64;
    let started = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let stop = &stop;
            let get = &get;
            let insert = &insert;
            handles.push(scope.spawn(move || {
                let mut state = seed ^ ((t as u64 + 1) << 32) ^ 0xC0_7E57;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let draw = lcg_next(&mut state);
                        let key = (draw >> 32) % keyspace;
                        // 3:1 lookup:insert, the shape of the partitioned
                        // phase (reads dominate, inserts go through the OCC
                        // resolve path on mostly-present keys).
                        if draw & 3 == 0 {
                            insert(index, key);
                        } else {
                            get(index, key);
                        }
                        ops += 1;
                    }
                }
                ops
            }));
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            total_ops += handle.join().expect("contention worker panicked");
        }
    });
    total_ops as f64 / started.elapsed().as_secs_f64()
}

fn hammer_legacy(
    legacy: &LegacyPartition,
    threads: usize,
    keyspace: u64,
    window: Duration,
    seed: u64,
) -> f64 {
    hammer(
        legacy,
        threads,
        keyspace,
        window,
        seed,
        |i, k| {
            let _ = i.get(k);
        },
        // The pre-shard OCC resolve path: probe under the read lock first,
        // construct the placeholder record and take the write lock only on a
        // miss (`resolve_write_records` before this PR).
        |i, k| {
            if i.get(k).is_none() {
                let _ = i.insert_if_absent(k, Record::new(Row::empty()));
            }
        },
    )
}

fn hammer_sharded(
    sharded: &Partition,
    threads: usize,
    keyspace: u64,
    window: Duration,
    seed: u64,
) -> f64 {
    hammer(
        sharded,
        threads,
        keyspace,
        window,
        seed,
        |i, k| {
            let _ = i.get(k);
        },
        // The sharded OCC resolve path (`resolve_write_records` today).
        |i, k| {
            let _ = i.get_or_insert_with(k, || Record::new(Row::empty()));
        },
    )
}

/// Runs the lookup+insert contention microbenchmark: `threads` workers over a
/// single partition with uniform keys, first against the pre-shard
/// single-lock index, then against the sharded index. Each side runs its own
/// production insert path (probe-then-`insert_if_absent` for the old index,
/// `get_or_insert_with` for the new one) so the comparison is the real
/// before/after of the OCC resolve hot path, not an API strawman.
pub fn contention_microbench(threads: usize, window: Duration, seed: u64) -> ContentionReport {
    let keyspace: u64 = 1 << 16;

    let legacy = LegacyPartition::new();
    for key in 0..keyspace {
        legacy.insert_if_absent(key, Record::new(Row::empty()));
    }
    let sharded = Partition::new();
    for key in 0..keyspace {
        sharded.get_or_insert_with(key, || Record::new(Row::empty()));
    }

    // Warm-up pass (shorter window) so page faults and lazy rehashing do not
    // land inside either measured window.
    let warmup = window / 8;
    hammer_legacy(&legacy, threads, keyspace, warmup, seed);
    hammer_sharded(&sharded, threads, keyspace, warmup, seed);

    let legacy_ops_per_sec = hammer_legacy(&legacy, threads, keyspace, window, seed);
    let sharded_ops_per_sec = hammer_sharded(&sharded, threads, keyspace, window, seed);

    ContentionReport {
        threads,
        keyspace,
        window_ms: window.as_millis() as u64,
        legacy_ops_per_sec,
        sharded_ops_per_sec,
        shards: sharded.num_shards(),
        speedup: sharded_ops_per_sec / legacy_ops_per_sec.max(1.0),
    }
}

// ---------------------------------------------------------------------------
// Baseline regression checking
// ---------------------------------------------------------------------------

/// One regression found by [`check_against_baseline`] — either a throughput
/// drop or a per-slice breakdown growth.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Engine label of the regressed point.
    pub engine: String,
    /// Workload of the regressed point.
    pub workload: String,
    /// Cross-partition percentage of the regressed point.
    pub cross_partition_pct: f64,
    /// Which metric regressed: `"committed_txns_per_sec"` or one of the
    /// `*_us_per_txn` breakdown slice fields.
    pub metric: &'static str,
    /// Metric value recorded in the committed baseline.
    pub baseline: f64,
    /// Metric value measured by this run.
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let unit = if self.metric == "committed_txns_per_sec" { "txns/sec" } else { "µs/txn" };
        write!(
            f,
            "{} / {} @ {:.0}% cross-partition: {} {:.0} -> {:.0} {unit} ({:+.1}%)",
            self.workload,
            self.engine,
            self.cross_partition_pct,
            self.metric,
            self.baseline,
            self.current,
            100.0 * (self.current - self.baseline) / self.baseline.max(1.0),
        )
    }
}

fn field<'v>(
    fields: &'v [(String, serde_json::Value)],
    name: &str,
) -> Option<&'v serde_json::Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_f64(value: &serde_json::Value) -> Option<f64> {
    match value {
        serde_json::Value::F64(v) => Some(*v),
        serde_json::Value::U64(v) => Some(*v as f64),
        serde_json::Value::I64(v) => Some(*v as f64),
        _ => None,
    }
}

/// Parses a committed `BENCH_*.json` document back into benchmark points.
/// Unknown fields are ignored so the schema can grow compatibly.
pub fn parse_baseline(json: &str) -> std::result::Result<Vec<BenchPoint>, String> {
    let value: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("invalid baseline JSON: {e}"))?;
    let serde_json::Value::Array(items) = value else {
        return Err("baseline JSON must be a top-level array of points".into());
    };
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let serde_json::Value::Object(fields) = item else {
                return Err(format!("baseline point {i} is not an object"));
            };
            let engine = match field(fields, "engine") {
                Some(serde_json::Value::String(s)) => s.clone(),
                _ => return Err(format!("baseline point {i} is missing \"engine\"")),
            };
            let workload = match field(fields, "workload") {
                Some(serde_json::Value::String(s)) => s.clone(),
                _ => return Err(format!("baseline point {i} is missing \"workload\"")),
            };
            let cross = field(fields, "cross_partition_pct")
                .and_then(as_f64)
                .ok_or_else(|| format!("baseline point {i} is missing \"cross_partition_pct\""))?;
            let throughput =
                field(fields, "committed_txns_per_sec").and_then(as_f64).ok_or_else(|| {
                    format!("baseline point {i} is missing \"committed_txns_per_sec\"")
                })?;
            let p50 = field(fields, "p50_commit_latency_us").and_then(as_f64).unwrap_or(0.0);
            let p99 = field(fields, "p99_commit_latency_us").and_then(as_f64).unwrap_or(0.0);
            // Breakdown fields are optional: baselines committed before the
            // breakdown existed parse as version 0 and are simply not
            // slice-gated.
            let slice = |name: &str| field(fields, name).and_then(as_f64).unwrap_or(0.0);
            let breakdown_version =
                field(fields, "breakdown_version").and_then(as_f64).unwrap_or(0.0) as u32;
            let wal_mode = match field(fields, "wal_mode") {
                Some(serde_json::Value::String(s)) => s.clone(),
                // Baselines predating the field never ran with a WAL.
                _ => "unrecorded".to_string(),
            };
            Ok(BenchPoint {
                engine,
                workload,
                cross_partition_pct: cross,
                committed_txns_per_sec: throughput,
                p50_commit_latency_us: p50 as u64,
                p99_commit_latency_us: p99 as u64,
                breakdown_version,
                execution_us_per_txn: slice("execution_us_per_txn"),
                fence_wait_us_per_txn: slice("fence_wait_us_per_txn"),
                replication_flush_us_per_txn: slice("replication_flush_us_per_txn"),
                wal_fsync_us_per_txn: slice("wal_fsync_us_per_txn"),
                wal_mode,
                lock_or_validate_us_per_txn: slice("lock_or_validate_us_per_txn"),
            })
        })
        .collect()
}

/// Slices cheaper than this in the baseline are never gated: a few-µs slice
/// doubling is measurement noise, not a regression.
const SLICE_GATE_FLOOR_US_PER_TXN: f64 = 100.0;

/// Compares freshly measured points against a committed baseline: any point
/// whose throughput dropped by more than `max_drop` (a fraction, e.g. `0.25`)
/// is reported, and — when both sides carry the same breakdown schema
/// version — so is any per-txn breakdown slice that *grew* by more than the
/// same fraction (above an absolute floor, so microscopic slices cannot trip
/// the gate on noise). Points present on only one side are ignored — adding
/// a new engine or sweep coordinate must not fail the gate retroactively.
pub fn check_against_baseline(
    current: &[BenchPoint],
    baseline: &[BenchPoint],
    max_drop: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for b in baseline {
        let matching = current.iter().find(|c| {
            c.engine == b.engine
                && c.workload == b.workload
                && (c.cross_partition_pct - b.cross_partition_pct).abs() < f64::EPSILON
        });
        let Some(c) = matching else { continue };
        if c.committed_txns_per_sec < b.committed_txns_per_sec * (1.0 - max_drop) {
            regressions.push(Regression {
                engine: b.engine.clone(),
                workload: b.workload.clone(),
                cross_partition_pct: b.cross_partition_pct,
                metric: "committed_txns_per_sec",
                baseline: b.committed_txns_per_sec,
                current: c.committed_txns_per_sec,
            });
        }
        if b.breakdown_version != BREAKDOWN_VERSION || c.breakdown_version != BREAKDOWN_VERSION {
            continue;
        }
        for ((name, base_us), (_, cur_us)) in b.slices().into_iter().zip(c.slices()) {
            if base_us >= SLICE_GATE_FLOOR_US_PER_TXN
                && cur_us > base_us * (1.0 + max_drop)
                && cur_us - base_us > SLICE_GATE_FLOOR_US_PER_TXN
            {
                regressions.push(Regression {
                    engine: b.engine.clone(),
                    workload: b.workload.clone(),
                    cross_partition_pct: b.cross_partition_pct,
                    metric: name,
                    baseline: base_us,
                    current: cur_us,
                });
            }
        }
    }
    regressions
}

/// Checks the STAR points of a thread-scaling sweep for monotone scaling:
/// for each consecutive pair of thread counts, throughput must not drop by
/// more than `tolerance` (a fraction — [`MONOTONICITY_TOLERANCE`] absorbs
/// run-to-run noise). Returns one human-readable violation per offending
/// pair; an empty vector means the scaling curve is monotone (within
/// tolerance). Points of other engines and other lanes are ignored.
pub fn check_thread_monotonicity(points: &[BenchPoint], tolerance: f64) -> Vec<String> {
    // Collect (thread count, throughput) for STAR points labelled
    // "<workload>-t<n>" by the thread-scaling lane.
    let mut curve: Vec<(usize, f64, &str)> = points
        .iter()
        .filter(|p| p.engine == "STAR")
        .filter_map(|p| {
            let (_, suffix) = p.workload.rsplit_once("-t")?;
            let threads: usize = suffix.parse().ok()?;
            Some((threads, p.committed_txns_per_sec, p.workload.as_str()))
        })
        .collect();
    curve.sort_by_key(|(threads, ..)| *threads);
    let mut violations = Vec::new();
    for pair in curve.windows(2) {
        let (prev_t, prev_tput, _) = pair[0];
        let (next_t, next_tput, label) = pair[1];
        if next_tput < prev_tput * (1.0 - tolerance) {
            violations.push(format!(
                "STAR thread scaling is not monotone: {label} {next_tput:.0} txns/sec is \
                 {:.1}% below t{prev_t} {prev_tput:.0} (tolerance {:.0}%)",
                100.0 * (prev_tput - next_tput) / prev_tput.max(1.0),
                tolerance * 100.0,
            ));
        }
        let _ = next_t;
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(engine: &str, workload: &str, pct: f64, tput: f64) -> BenchPoint {
        BenchPoint {
            engine: engine.into(),
            workload: workload.into(),
            cross_partition_pct: pct,
            committed_txns_per_sec: tput,
            p50_commit_latency_us: 10,
            p99_commit_latency_us: 99,
            breakdown_version: BREAKDOWN_VERSION,
            execution_us_per_txn: 500.0,
            fence_wait_us_per_txn: 200.0,
            replication_flush_us_per_txn: 150.0,
            wal_fsync_us_per_txn: 0.0,
            wal_mode: "off".into(),
            lock_or_validate_us_per_txn: 50.0,
        }
    }

    #[test]
    fn wal_mode_roundtrips_and_defaults_for_old_baselines() {
        let points = vec![point("STAR", "ycsb", 10.0, 1000.0)];
        let json = BenchSuite::to_json(&points);
        assert!(json.contains("\"wal_mode\": \"off\""));
        assert_eq!(parse_baseline(&json).unwrap()[0].wal_mode, "off");
        // A baseline predating the field parses with an explicit marker.
        let old = r#"[{"engine": "STAR", "workload": "ycsb",
            "cross_partition_pct": 10.0, "committed_txns_per_sec": 1000.0}]"#;
        assert_eq!(parse_baseline(old).unwrap()[0].wal_mode, "unrecorded");
    }

    #[test]
    fn thread_monotonicity_check_flags_only_real_collapses() {
        let curve = |t1: f64, t2: f64, t4: f64| {
            vec![
                point("STAR", "ycsb-t1", 10.0, t1),
                point("STAR", "ycsb-t2", 10.0, t2),
                point("STAR", "ycsb-t4", 10.0, t4),
                // Other engines in the lane never trip the STAR gate.
                point("Calvin", "ycsb-t4", 10.0, 1.0),
                // Cross-partition sweep points are not part of the curve.
                point("STAR", "ycsb", 10.0, 1e9),
            ]
        };
        // Monotone: fine. Flat within tolerance: fine.
        assert!(check_thread_monotonicity(&curve(100.0, 110.0, 120.0), 0.05).is_empty());
        assert!(check_thread_monotonicity(&curve(100.0, 98.0, 96.0), 0.05).is_empty());
        // The seed repo's collapse shape (t2 46.7k -> t4 33.1k) fires.
        let violations = check_thread_monotonicity(&curve(41.9e3, 46.7e3, 33.1e3), 0.05);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("ycsb-t4"), "{}", violations[0]);
    }

    #[test]
    fn bench_json_roundtrips_through_parse_baseline() {
        let points = vec![point("STAR", "ycsb", 10.0, 125000.0), point("Calvin", "tpcc", 0.0, 7.5)];
        let json = BenchSuite::to_json(&points);
        assert!(json.contains("\"committed_txns_per_sec\""));
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].engine, "STAR");
        assert_eq!(parsed[0].committed_txns_per_sec, 125000.0);
        assert_eq!(parsed[1].workload, "tpcc");
        assert_eq!(parsed[1].p99_commit_latency_us, 99);
        // Breakdown slices roundtrip with their schema version.
        assert_eq!(parsed[0].breakdown_version, BREAKDOWN_VERSION);
        assert_eq!(parsed[0].execution_us_per_txn, 500.0);
        assert_eq!(parsed[0].fence_wait_us_per_txn, 200.0);
    }

    #[test]
    fn pre_breakdown_baselines_parse_as_version_zero() {
        // A baseline committed before the breakdown existed has none of the
        // slice fields; it must parse cleanly and never be slice-gated.
        let json = r#"[{"engine": "STAR", "workload": "ycsb",
            "cross_partition_pct": 10.0, "committed_txns_per_sec": 1000.0}]"#;
        let baseline = parse_baseline(json).unwrap();
        assert_eq!(baseline[0].breakdown_version, 0);
        // Current run has huge slices; no slice regression may fire because
        // the baseline predates the schema.
        let current = vec![point("STAR", "ycsb", 10.0, 1000.0)];
        assert!(check_against_baseline(&current, &baseline, 0.25).is_empty());
    }

    #[test]
    fn slice_regressions_fire_past_threshold_and_floor() {
        let baseline = vec![point("STAR", "ycsb", 10.0, 1000.0)];
        // fence_wait grows 200 -> 500 µs/txn: a slice regression even though
        // throughput held.
        let mut bad = point("STAR", "ycsb", 10.0, 1000.0);
        bad.fence_wait_us_per_txn = 500.0;
        let regressions = check_against_baseline(&[bad], &baseline, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].metric, "fence_wait_us_per_txn");
        assert!(regressions[0].to_string().contains("µs/txn"));
        // lock_or_validate grows 50 -> 90 µs/txn: below the absolute floor,
        // ignored as noise.
        let mut noisy = point("STAR", "ycsb", 10.0, 1000.0);
        noisy.lock_or_validate_us_per_txn = 90.0;
        assert!(check_against_baseline(&[noisy], &baseline, 0.25).is_empty());
    }

    #[test]
    fn parse_baseline_rejects_malformed_documents() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("[{\"engine\": \"STAR\"}]").is_err());
        assert!(parse_baseline("not json").is_err());
    }

    #[test]
    fn regression_gate_fires_only_past_threshold() {
        let baseline = vec![point("STAR", "ycsb", 10.0, 1000.0)];
        // 20% drop with a 25% gate: fine.
        let ok = vec![point("STAR", "ycsb", 10.0, 800.0)];
        assert!(check_against_baseline(&ok, &baseline, 0.25).is_empty());
        // 30% drop: regression.
        let bad = vec![point("STAR", "ycsb", 10.0, 700.0)];
        let regressions = check_against_baseline(&bad, &baseline, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].baseline, 1000.0);
        assert!(regressions[0].to_string().contains("ycsb / STAR"));
    }

    #[test]
    fn new_points_do_not_fail_the_gate() {
        let baseline = vec![point("STAR", "ycsb", 10.0, 1000.0)];
        let current = vec![point("STAR", "ycsb", 50.0, 1.0), point("STAR", "ycsb", 10.0, 990.0)];
        assert!(check_against_baseline(&current, &baseline, 0.25).is_empty());
    }

    #[test]
    fn contention_microbench_reports_sane_numbers() {
        let report = contention_microbench(2, Duration::from_millis(40), 7);
        assert!(report.legacy_ops_per_sec > 0.0);
        assert!(report.sharded_ops_per_sec > 0.0);
        assert!(report.shards >= 1);
        assert!(report.speedup > 0.0);
    }
}
