//! End-to-end wire chaos: the committed regression corpus, the
//! probabilistic fault sweep, the kill/recover cycle and the negative
//! parity control, all replayed against real TCP clusters behind the
//! fault-injecting proxy mesh and compared byte-for-byte to the stepped
//! simulation twin.

use star_wire_chaos::plans::{kill_recover_plan, negative_control_plan, sweep_plan};
use star_wire_chaos::replay_plan_in_process;

/// Replays one committed corpus entry over the wire and asserts parity.
fn replay_corpus_entry(name: &str) {
    let (_, _, category, plan) = star_chaos::corpus::committed_entries()
        .into_iter()
        .find(|(n, ..)| *n == name)
        .unwrap_or_else(|| panic!("corpus entry `{name}` is missing"));
    let report = replay_plan_in_process(&plan)
        .unwrap_or_else(|e| panic!("corpus/{category}/{name} errored: {e}"));
    assert!(report.committed > 0, "corpus/{category}/{name} committed nothing over the wire");
    assert!(
        report.passed(),
        "corpus/{category}/{name} diverged from the twin: {:?}",
        report.violations
    );
}

#[test]
fn corpus_stale_inbox_replays_green_over_the_wire() {
    replay_corpus_entry("recovered-node-stale-inbox");
}

#[test]
fn corpus_atomic_recovery_replays_green_over_the_wire() {
    replay_corpus_entry("master-and-partial-staggered-recovery");
}

#[test]
fn corpus_reelection_replays_green_over_the_wire() {
    replay_corpus_entry("reelection-with-faulted-recovery");
}

/// Seeded duplicate/delay/reorder faults at the socket layer draw the same
/// verdict stream as the simulator's fault plane, so the cluster state
/// stays byte-identical to the twin.
#[test]
fn seeded_wire_fault_sweep_matches_the_twin() {
    for seed in [0, 1] {
        let plan = sweep_plan(seed);
        let report =
            replay_plan_in_process(&plan).unwrap_or_else(|e| panic!("seed {seed} errored: {e}"));
        assert!(report.committed > 0, "seed {seed} committed nothing");
        assert!(report.passed(), "sweep seed {seed} diverged: {:?}", report.violations);
    }
}

/// The full kill/recover cycle in-process: a partial node dies mid-epoch
/// and catches back up, then the master dies, is recovered and
/// deterministically re-elected — all matching the twin.
#[test]
fn kill_recover_cycle_matches_the_twin_in_process() {
    let plan = kill_recover_plan(9);
    let report = replay_plan_in_process(&plan).expect("kill/recover replay runs");
    assert!(report.committed > 0, "kill/recover cycle committed nothing");
    assert!(report.passed(), "kill/recover cycle diverged: {:?}", report.violations);
}

/// Negative control: a silent unforgiven frame drop at the proxy. The twin
/// loses the same frames — wire and twin stay byte-identical — but the
/// merged history is *wrong*, and the serializability checker must say so.
/// Proves the harness detects real protocol violations.
#[test]
fn unforgiven_frame_loss_at_the_proxy_is_caught() {
    let plan = negative_control_plan(31);
    let report = replay_plan_in_process(&plan).expect("negative control runs");
    assert!(
        report.violations.iter().any(|v| v.contains("not serializable")),
        "silent frame loss must trip the serializability checker, got {:?}",
        report.violations
    );
    assert!(
        !report.violations.iter().any(|v| v.contains("diverge")),
        "wire and twin must fail *identically* (the loss is mirrored), got {:?}",
        report.violations
    );
}
