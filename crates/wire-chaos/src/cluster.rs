//! Cluster backends the wire chaos runner drives: either in-process
//! [`NodeServer`]s (fast, used by the corpus replay tests) or real
//! `star-serverd` child processes that the supervisor SIGKILLs and
//! restarts (the deployment-shaped CI lane).
//!
//! Both backends share the port-race-free boot protocol: every node binds
//! an ephemeral port (`127.0.0.1:0`) and *reports* the address it actually
//! got — in-process via [`NodeServer::local_addr`], out-of-process by
//! parsing the `serving on <addr>` line `star-serverd` prints on stdout.
//! Peers never dial those addresses directly; they dial the proxy mesh,
//! whose listen addresses are stable across restarts.

use crate::proxy::ProxyMesh;
use star_common::ClusterConfig;
use star_core::Workload;
use star_serverd::NodeServer;
use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// A cluster of STAR nodes the chaos runner can address, kill and restart.
pub trait WireCluster {
    /// The control (client-facing) address of `node`.
    fn control_addr(&self, node: usize) -> String;
    /// Kills `node` abruptly (SIGKILL for processes; drop for in-process
    /// servers). The node's volatile state is lost.
    fn kill(&mut self, node: usize) -> Result<(), String>;
    /// Restarts `node` from scratch and returns its new real address.
    fn restart(&mut self, node: usize) -> Result<String, String>;
}

/// In-process backend: each node is a [`NodeServer`] on its own ephemeral
/// listener, booted with a proxy-pointing address book.
pub struct InProcessCluster {
    config: ClusterConfig,
    workload: Arc<dyn Workload>,
    books: Vec<Vec<String>>,
    servers: Vec<Option<NodeServer>>,
}

impl InProcessCluster {
    /// Boots every node and points the proxies at the real addresses.
    pub fn start(
        config: ClusterConfig,
        workload: Arc<dyn Workload>,
        proxies: &ProxyMesh,
    ) -> Result<InProcessCluster, String> {
        let books: Vec<Vec<String>> = (0..config.num_nodes).map(|n| proxies.node_book(n)).collect();
        let mut cluster = InProcessCluster { config, workload, books, servers: Vec::new() };
        for node in 0..cluster.config.num_nodes {
            let server = cluster.boot(node)?;
            proxies.set_target(node, server.local_addr());
            cluster.servers.push(Some(server));
        }
        Ok(cluster)
    }

    fn boot(&self, node: usize) -> Result<NodeServer, String> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("node {node}: cannot bind: {e}"))?;
        NodeServer::start_with(
            listener,
            self.config.clone(),
            self.books[node].clone(),
            Arc::clone(&self.workload),
            node,
        )
        .map_err(|e| format!("node {node}: cannot start: {e}"))
    }
}

impl WireCluster for InProcessCluster {
    fn control_addr(&self, node: usize) -> String {
        self.servers[node].as_ref().expect("node is down").local_addr().to_string()
    }

    fn kill(&mut self, node: usize) -> Result<(), String> {
        if let Some(server) = self.servers[node].take() {
            server.shutdown();
            // Dropping joins the listener; connection threads notice the
            // shutdown flag within their read timeout.
        }
        Ok(())
    }

    fn restart(&mut self, node: usize) -> Result<String, String> {
        let server = self.boot(node)?;
        let addr = server.local_addr().to_string();
        self.servers[node] = Some(server);
        Ok(addr)
    }
}

impl Drop for InProcessCluster {
    fn drop(&mut self) {
        for server in self.servers.iter().flatten() {
            server.shutdown();
        }
    }
}

/// One managed `star-serverd` child process.
struct ManagedNode {
    child: Child,
    addr: String,
}

/// Real-process backend: spawns `star-serverd` children, kills them with
/// SIGKILL and restarts them, re-learning each ephemeral address from the
/// `serving on` startup line.
pub struct ProcessCluster {
    binary: PathBuf,
    bootstrap_paths: Vec<PathBuf>,
    nodes: Vec<Option<ManagedNode>>,
}

impl ProcessCluster {
    /// Boots `num_nodes` children. `render_bootstrap` receives each node's
    /// proxy-pointing address book and returns the full bootstrap TOML;
    /// the per-node files are written under `dir` (which must exist).
    pub fn start(
        binary: &Path,
        num_nodes: usize,
        proxies: &ProxyMesh,
        dir: &Path,
        render_bootstrap: impl Fn(&[String]) -> String,
    ) -> Result<ProcessCluster, String> {
        let mut bootstrap_paths = Vec::with_capacity(num_nodes);
        for node in 0..num_nodes {
            let text = render_bootstrap(&proxies.node_book(node));
            let path = dir.join(format!("node-{node}.toml"));
            std::fs::write(&path, text)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            bootstrap_paths.push(path);
        }
        let mut cluster =
            ProcessCluster { binary: binary.to_path_buf(), bootstrap_paths, nodes: Vec::new() };
        for node in 0..num_nodes {
            let managed = cluster.spawn(node)?;
            proxies.set_target(node, &managed.addr);
            cluster.nodes.push(Some(managed));
        }
        Ok(cluster)
    }

    fn spawn(&self, node: usize) -> Result<ManagedNode, String> {
        let mut child = Command::new(&self.binary)
            .arg("--bootstrap")
            .arg(&self.bootstrap_paths[node])
            .arg("--node")
            .arg(node.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn {}: {e}", self.binary.display()))?;
        let stdout = child.stdout.take().ok_or("no stdout pipe")?;
        let mut reader = BufReader::new(stdout);
        let addr = loop {
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("node {node}: reading startup line: {e}"))?;
            if n == 0 {
                let _ = child.kill();
                return Err(format!("node {node}: exited before reporting its address"));
            }
            if let Some(addr) = parse_serving_line(&line) {
                break addr;
            }
        };
        // Keep the pipe drained so the child never blocks on a full buffer.
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = reader.read_to_end(&mut sink);
        });
        Ok(ManagedNode { child, addr })
    }
}

/// Extracts the bound address from `star-serverd`'s startup line
/// (`star-serverd: node N serving on 127.0.0.1:PORT (...)`).
fn parse_serving_line(line: &str) -> Option<String> {
    let rest = line.split("serving on ").nth(1)?;
    Some(rest.split_whitespace().next()?.to_string())
}

impl WireCluster for ProcessCluster {
    fn control_addr(&self, node: usize) -> String {
        self.nodes[node].as_ref().expect("node is down").addr.clone()
    }

    fn kill(&mut self, node: usize) -> Result<(), String> {
        if let Some(mut managed) = self.nodes[node].take() {
            // `Child::kill` is SIGKILL on Unix: no shutdown handler runs,
            // exactly the process-death the recovery path must survive.
            managed.child.kill().map_err(|e| format!("kill node {node}: {e}"))?;
            managed.child.wait().map_err(|e| format!("wait node {node}: {e}"))?;
        }
        Ok(())
    }

    fn restart(&mut self, node: usize) -> Result<String, String> {
        let managed = self.spawn(node)?;
        let addr = managed.addr.clone();
        self.nodes[node] = Some(managed);
        Ok(addr)
    }
}

impl Drop for ProcessCluster {
    fn drop(&mut self) {
        for managed in self.nodes.iter_mut().flatten() {
            let _ = managed.child.kill();
            let _ = managed.child.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_line_parses() {
        let line = "star-serverd: node 2 serving on 127.0.0.1:40213 (3 node(s), 6 partition(s), seed 42)\n";
        assert_eq!(parse_serving_line(line), Some("127.0.0.1:40213".to_string()));
        assert_eq!(parse_serving_line("something else\n"), None);
    }
}
