//! Schedule lowering: simulator fault schedules → wire-executable ones.
//!
//! The simulator's `Crash` is *network isolation*: the crashed node keeps
//! executing the remainder of the in-flight epoch (consuming its workload
//! RNG exactly like a healthy node) while its messages are swallowed, and
//! the next fence detects the failure and reverts the epoch. A SIGKILLed
//! process cannot keep executing, so a mid-phase kill cannot reproduce the
//! simulator's trajectory.
//!
//! The equivalence that makes lowering exact: everything the doomed node
//! does between the crash op and the detecting fence is discarded by the
//! epoch revert on every surviving replica, and the node's own pending
//! history dies with the epoch. Moving the kill to the *fence boundary*
//! therefore changes nothing observable — provided the simulation twin
//! runs the same moved schedule, which is why the runner executes both
//! sides from the lowered form:
//!
//! * `Crash` at `PartitionedStart` / `MidPartitioned` /
//!   `BeforeFirstFence` → `BeforeFirstFence` (the first fence detects it);
//! * `Crash` at `SingleMasterStart` / `MidSingleMaster` /
//!   `BeforeSecondFence` → `BeforeSecondFence`;
//! * `Crash` at `IterationEnd` → `BeforeFirstFence` of the *next*
//!   iteration (the op fires after both fences; the next fence is one
//!   iteration later);
//! * every other supported op keeps its point (`Recover*` and link ops
//!   are fence-aligned or order-insensitive already);
//! * `Checkpoint` / `TruncateWal` are disk-simulation ops with no wire
//!   equivalent — lowering them is a typed error, not a silent drop.
//!
//! One documented caveat: between a lowered kill and its fence the wire
//! node's outbound frames still roll the per-link fault RNG, while the
//! simulator swallows the isolated node's sends without rolling. With
//! probabilistic link faults active on those links during a doomed epoch
//! the fault streams would diverge; schedules therefore keep kill/recover
//! ops and probabilistic fault sweeps in separate plans (the committed
//! corpus already does).

use star_chaos::{FaultOp, FaultSchedule, InjectionPoint};

/// Compiles `schedule` to its wire-executable form (see module docs).
/// Fails on ops that cannot be expressed over the wire.
pub fn lower_schedule(schedule: &FaultSchedule) -> Result<FaultSchedule, String> {
    use InjectionPoint::*;
    let mut lowered = FaultSchedule::new();
    for scheduled in schedule.ops() {
        match &scheduled.op {
            FaultOp::Checkpoint | FaultOp::TruncateWal(..) => {
                return Err(format!(
                    "schedule op {:?} at iteration {} has no wire equivalent (disk-simulation \
                     only); run it through the simulator harness instead",
                    scheduled.op, scheduled.iteration
                ));
            }
            FaultOp::Crash(node) => {
                let (iteration, point) = match scheduled.point {
                    PartitionedStart | MidPartitioned | BeforeFirstFence => {
                        (scheduled.iteration, BeforeFirstFence)
                    }
                    SingleMasterStart | MidSingleMaster | BeforeSecondFence => {
                        (scheduled.iteration, BeforeSecondFence)
                    }
                    IterationEnd => (scheduled.iteration + 1, BeforeFirstFence),
                };
                lowered.push(iteration, point, FaultOp::Crash(*node));
            }
            other => lowered.push(scheduled.iteration, scheduled.point, other.clone()),
        }
    }
    Ok(lowered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_core::RecoveryFault;

    fn crash_at(point: InjectionPoint) -> FaultSchedule {
        FaultSchedule::new().at(2, point, FaultOp::Crash(1))
    }

    fn lowered_single(point: InjectionPoint) -> (usize, InjectionPoint) {
        let lowered = lower_schedule(&crash_at(point)).unwrap();
        let op = &lowered.ops()[0];
        assert_eq!(op.op, FaultOp::Crash(1));
        (op.iteration, op.point)
    }

    #[test]
    fn crashes_lower_to_the_detecting_fence() {
        use InjectionPoint::*;
        assert_eq!(lowered_single(PartitionedStart), (2, BeforeFirstFence));
        assert_eq!(lowered_single(MidPartitioned), (2, BeforeFirstFence));
        assert_eq!(lowered_single(BeforeFirstFence), (2, BeforeFirstFence));
        assert_eq!(lowered_single(SingleMasterStart), (2, BeforeSecondFence));
        assert_eq!(lowered_single(MidSingleMaster), (2, BeforeSecondFence));
        assert_eq!(lowered_single(BeforeSecondFence), (2, BeforeSecondFence));
        // After both fences: the next detecting fence is one iteration out.
        assert_eq!(lowered_single(IterationEnd), (3, BeforeFirstFence));
    }

    #[test]
    fn non_crash_ops_keep_their_point_and_order() {
        let schedule = FaultSchedule::new()
            .at(0, InjectionPoint::PartitionedStart, FaultOp::CutLink(0, 1))
            .at(1, InjectionPoint::MidPartitioned, FaultOp::Crash(2))
            .at(
                1,
                InjectionPoint::IterationEnd,
                FaultOp::RecoverInterrupted(2, RecoveryFault::SourceCrash),
            )
            .at(3, InjectionPoint::IterationEnd, FaultOp::Recover(2));
        let lowered = lower_schedule(&schedule).unwrap();
        let ops = lowered.ops();
        assert_eq!(ops.len(), 4);
        assert_eq!(ops[0].op, FaultOp::CutLink(0, 1));
        assert_eq!(ops[0].point, InjectionPoint::PartitionedStart);
        assert_eq!(ops[1].point, InjectionPoint::BeforeFirstFence);
        assert_eq!(ops[2].op, FaultOp::RecoverInterrupted(2, RecoveryFault::SourceCrash));
        assert_eq!(ops[2].point, InjectionPoint::IterationEnd);
        assert_eq!(ops[3].op, FaultOp::Recover(2));
        assert_eq!(ops[3].point, InjectionPoint::IterationEnd);
    }

    #[test]
    fn disk_simulation_ops_are_a_typed_error() {
        let checkpoint =
            FaultSchedule::new().at(0, InjectionPoint::IterationEnd, FaultOp::Checkpoint);
        let err = lower_schedule(&checkpoint).unwrap_err();
        assert!(err.contains("no wire equivalent"), "{err}");
        let torn =
            FaultSchedule::new().at(1, InjectionPoint::IterationEnd, FaultOp::TruncateWal(0, 8));
        assert!(lower_schedule(&torn).is_err());
    }
}
