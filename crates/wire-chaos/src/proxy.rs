//! The interposing proxy mesh: one seeded fault-injecting TCP proxy per
//! directed link of the replication mesh.
//!
//! Every `star-serverd` node is booted with an address book that points at
//! proxies instead of peers: node `i`'s entry for peer `j` is the listen
//! address of proxy link `i → j`, whose forward side dials node `j`'s real
//! address. The proxy reassembles replication frames with the shared
//! [`FrameBuffer`] and rolls each one through the *same*
//! [`FaultPlane`] the simulator uses — same seed and same per-link frame
//! sequence produce byte-for-byte the same drop / delay / duplicate /
//! reorder / corrupt / cut verdicts at the socket layer.
//!
//! Counter discipline (what makes failure-aware fences possible):
//!
//! * `ingested` — frames fully reassembled off the inbound socket;
//! * `settled` — frames that reached a terminal verdict (forwarded,
//!   dropped, stashed or swallowed); `settled == ingested` with nothing
//!   buffered means the link is quiescent;
//! * `delivered` — frames actually written toward the destination
//!   (duplicates count twice, drops and swallows not at all).
//!
//! The supervisor fences with *delivered* counts as each receiver's
//! `expected` vector, so the fence barrier stays exact even when the plane
//! is dropping or duplicating traffic — the simulator's fence has the same
//! property because its queues are its own delivery ledger.
//!
//! Frames touching a node marked failed are swallowed **without rolling
//! the plane RNG**, mirroring the simulated network's failed-node check,
//! which short-circuits before any fault draw — so a kill/recover cycle
//! leaves the surviving links' fault streams untouched.
//!
//! Proxy listen addresses are bound once and never change; a restarted
//! node gets a fresh real address ([`ProxyMesh::set_target`]) while its
//! peers keep dialing the same proxy — which is also what makes restarts
//! race-free under ephemeral ports.

use bytes::Bytes;
use star_net::{FaultPlane, FaultVerdict, LinkFaults};
use star_proto::{FrameBuffer, WireMessage};
use star_replication::{encode_entry_block, split_entry_block};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long forward connects retry (the destination may be restarting).
const FORWARD_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// The mutable forwarding side of one link.
#[derive(Default)]
struct LinkState {
    /// Lazily connected stream toward the destination node.
    forward: Option<TcpStream>,
    /// Frames held back by `Reorder` verdicts, released by the next
    /// delivered frame or a fence flush.
    stash: Vec<Bytes>,
}

/// One directed link `from → to`.
struct Link {
    from: usize,
    to: usize,
    /// The proxy's own listen address (stable for the cluster's lifetime).
    addr: String,
    /// The destination node's current real address.
    target: Mutex<Option<String>>,
    state: Mutex<LinkState>,
    ingested: AtomicU64,
    settled: AtomicU64,
    delivered: AtomicU64,
}

struct MeshInner {
    num_nodes: usize,
    plane: FaultPlane,
    failed: Mutex<BTreeSet<usize>>,
    /// Dense `(from, to)` table; the diagonal entries are `None`.
    links: Vec<Option<Arc<Link>>>,
    shutdown: AtomicBool,
}

impl MeshInner {
    fn link(&self, from: usize, to: usize) -> &Arc<Link> {
        self.links[from * self.num_nodes + to].as_ref().expect("no self link")
    }
}

/// The full proxy mesh: `n · (n − 1)` interposing proxies plus the shared
/// fault plane and failed-node set.
pub struct ProxyMesh {
    inner: Arc<MeshInner>,
    accept_threads: Vec<std::thread::JoinHandle<()>>,
}

impl ProxyMesh {
    /// Binds one listener per directed link and starts the accept loops.
    pub fn start(num_nodes: usize) -> std::io::Result<ProxyMesh> {
        let mut links: Vec<Option<Arc<Link>>> = Vec::with_capacity(num_nodes * num_nodes);
        let mut listeners: Vec<(Arc<Link>, TcpListener)> = Vec::new();
        for from in 0..num_nodes {
            for to in 0..num_nodes {
                if from == to {
                    links.push(None);
                    continue;
                }
                let listener = TcpListener::bind("127.0.0.1:0")?;
                listener.set_nonblocking(true)?;
                let link = Arc::new(Link {
                    from,
                    to,
                    addr: listener.local_addr()?.to_string(),
                    target: Mutex::new(None),
                    state: Mutex::new(LinkState::default()),
                    ingested: AtomicU64::new(0),
                    settled: AtomicU64::new(0),
                    delivered: AtomicU64::new(0),
                });
                links.push(Some(Arc::clone(&link)));
                listeners.push((link, listener));
            }
        }
        let inner = Arc::new(MeshInner {
            num_nodes,
            plane: FaultPlane::default(),
            failed: Mutex::new(BTreeSet::new()),
            links,
            shutdown: AtomicBool::new(false),
        });
        let accept_threads = listeners
            .into_iter()
            .map(|(link, listener)| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || accept_loop(inner, link, listener))
            })
            .collect();
        Ok(ProxyMesh { inner, accept_threads })
    }

    /// Number of nodes the mesh proxies for.
    pub fn num_nodes(&self) -> usize {
        self.inner.num_nodes
    }

    /// The listen address of the `from → to` proxy.
    pub fn proxy_addr(&self, from: usize, to: usize) -> String {
        self.inner.link(from, to).addr.clone()
    }

    /// The address book node `node` should boot with: every peer entry is
    /// the matching proxy, the node's own entry is an ephemeral-bind
    /// placeholder (a node never dials itself).
    pub fn node_book(&self, node: usize) -> Vec<String> {
        (0..self.inner.num_nodes)
            .map(
                |peer| {
                    if peer == node {
                        "127.0.0.1:0".to_string()
                    } else {
                        self.proxy_addr(node, peer)
                    }
                },
            )
            .collect()
    }

    /// Points every `* → node` proxy at the node's (new) real address.
    pub fn set_target(&self, node: usize, addr: &str) {
        for from in 0..self.inner.num_nodes {
            if from == node {
                continue;
            }
            let link = self.inner.link(from, node);
            *link.target.lock().unwrap_or_else(|p| p.into_inner()) = Some(addr.to_string());
            // Any existing forward stream points at the old process.
            link.state.lock().unwrap_or_else(|p| p.into_inner()).forward = None;
        }
    }

    /// Marks `node` failed (or healed). Frames on links touching a failed
    /// node are swallowed without a fault-plane roll.
    pub fn set_node_failed(&self, node: usize, failed: bool) {
        let mut set = self.inner.failed.lock().unwrap_or_else(|p| p.into_inner());
        if failed {
            set.insert(node);
        } else {
            set.remove(&node);
        }
    }

    /// Re-seeds the fault plane (same semantics as the simulator's).
    pub fn seed(&self, seed: u64) {
        self.inner.plane.seed(seed);
    }

    /// Fault probabilities for every link without an override.
    pub fn set_default_faults(&self, faults: LinkFaults) {
        self.inner.plane.set_default_faults(faults);
    }

    /// Fault probabilities for one directed link.
    pub fn set_link_faults(&self, from: usize, to: usize, faults: LinkFaults) {
        self.inner.plane.set_link_faults(from, to, faults);
    }

    /// Clears every fault configuration and cut link.
    pub fn clear_faults(&self) {
        self.inner.plane.clear_faults();
    }

    /// Cuts the bidirectional link between `a` and `b`.
    pub fn cut_link(&self, a: usize, b: usize) {
        self.inner.plane.cut_link(a, b);
    }

    /// Restores a previously cut link.
    pub fn heal_link(&self, a: usize, b: usize) {
        self.inner.plane.heal_link(a, b);
    }

    /// Cumulative frames written toward `to` on the `from → to` link.
    pub fn delivered(&self, from: usize, to: usize) -> u64 {
        if from == to {
            return 0;
        }
        self.inner.link(from, to).delivered.load(Ordering::SeqCst)
    }

    /// The full delivered-count matrix (`[from][to]`, diagonal zero).
    pub fn delivered_matrix(&self) -> Vec<Vec<u64>> {
        (0..self.inner.num_nodes)
            .map(|from| (0..self.inner.num_nodes).map(|to| self.delivered(from, to)).collect())
            .collect()
    }

    /// Blocks until every link has ingested everything its sender shipped
    /// (`shipped[from][to]`, the senders' cumulative counts) and settled it.
    /// TCP delivers what a killed sender had already written, so this
    /// converges for dead senders too.
    pub fn wait_settled(&self, shipped: &[Vec<u64>], timeout: Duration) -> Result<(), String> {
        let deadline = Instant::now() + timeout;
        for (from, row) in shipped.iter().enumerate().take(self.inner.num_nodes) {
            for (to, &sent) in row.iter().enumerate().take(self.inner.num_nodes) {
                if from == to {
                    continue;
                }
                let link = self.inner.link(from, to);
                loop {
                    let ingested = link.ingested.load(Ordering::SeqCst);
                    let settled = link.settled.load(Ordering::SeqCst);
                    if ingested >= sent && settled == ingested {
                        break;
                    }
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "link {from}→{to} not settled: shipped {sent}, ingested {ingested}, \
                             settled {settled}"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        Ok(())
    }

    /// Releases every reorder stash (the fence-time flush; the simulator's
    /// network does the same when an epoch closes). Stashed frames touching
    /// a currently failed node are swallowed instead.
    pub fn flush_all(&self) {
        for from in 0..self.inner.num_nodes {
            for to in 0..self.inner.num_nodes {
                if from != to {
                    flush_stash(&self.inner, self.inner.link(from, to));
                }
            }
        }
    }

    /// Stops the accept loops. Forwarding threads drain on their own.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for ProxyMesh {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.accept_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(inner: Arc<MeshInner>, link: Arc<Link>, listener: TcpListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(&inner);
                let link = Arc::clone(&link);
                std::thread::spawn(move || serve_inbound(inner, link, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Reads frames off one inbound connection (the sender's mesh stream) and
/// pushes each through the fault plane.
fn serve_inbound(inner: Arc<MeshInner>, link: Arc<Link>, stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        // Drain completed frames before reading more.
        loop {
            match frames.next_frame() {
                Ok(Some(frame)) => process_frame(&inner, &link, frame),
                Ok(None) => break,
                // Not self-resynchronising: drop the connection like the
                // server's own reader does.
                Err(_) => return,
            }
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => frames.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn process_frame(inner: &MeshInner, link: &Arc<Link>, frame: Bytes) {
    link.ingested.fetch_add(1, Ordering::SeqCst);
    let touching_failed = {
        let failed = inner.failed.lock().unwrap_or_else(|p| p.into_inner());
        failed.contains(&link.from) || failed.contains(&link.to)
    };
    if touching_failed {
        // Mirrors the simulated network: the failed-node check precedes any
        // fault draw, so the surviving links' RNG streams are unperturbed.
        link.settled.fetch_add(1, Ordering::SeqCst);
        return;
    }
    match inner.plane.roll(link.from, link.to) {
        FaultVerdict::Deliver { extra_delay } => {
            sleep_nonzero(extra_delay);
            forward(link, &frame);
            flush_stash(inner, link);
        }
        FaultVerdict::Drop => {}
        FaultVerdict::Duplicate { extra_delay } => {
            sleep_nonzero(extra_delay);
            forward(link, &frame);
            forward(link, &frame);
            flush_stash(inner, link);
        }
        FaultVerdict::Reorder => {
            link.state.lock().unwrap_or_else(|p| p.into_inner()).stash.push(frame);
        }
        FaultVerdict::Corrupt { salt, extra_delay } => {
            sleep_nonzero(extra_delay);
            let corrupted = corrupt_frame(&frame, salt).unwrap_or(frame);
            forward(link, &corrupted);
            flush_stash(inner, link);
        }
    }
    link.settled.fetch_add(1, Ordering::SeqCst);
}

fn sleep_nonzero(delay: Duration) {
    if !delay.is_zero() {
        std::thread::sleep(delay);
    }
}

/// The wire form of the simulator's byzantine bit-flip: decode the
/// replication frame, corrupt one entry's payload with the plane-drawn
/// salt (the same entry `ReplicationBatch::corrupt` picks), re-frame.
fn corrupt_frame(frame: &Bytes, salt: u64) -> Option<Bytes> {
    let (message, _) = WireMessage::decode(frame).ok()?;
    let WireMessage::Replication { from, epoch, entries } = message else {
        return None;
    };
    let mut entries = split_entry_block(&entries).ok()?;
    if entries.is_empty() {
        return None;
    }
    let index = (salt as usize) % entries.len();
    entries[index].corrupt_payload(salt);
    let corrupted = WireMessage::Replication { from, epoch, entries: encode_entry_block(&entries) };
    Some(corrupted.encode())
}

/// Releases the reorder stash in order (each release is a delivery).
fn flush_stash(inner: &MeshInner, link: &Arc<Link>) {
    let stashed: Vec<Bytes> = {
        let mut state = link.state.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::take(&mut state.stash)
    };
    if stashed.is_empty() {
        return;
    }
    let touching_failed = {
        let failed = inner.failed.lock().unwrap_or_else(|p| p.into_inner());
        failed.contains(&link.from) || failed.contains(&link.to)
    };
    for frame in stashed {
        if !touching_failed {
            forward(link, &frame);
        }
    }
}

/// Writes one frame toward the destination, (re)connecting as needed. A
/// frame that cannot be written is swallowed *without* counting as
/// delivered, so fence barriers never wait for it.
fn forward(link: &Arc<Link>, frame: &Bytes) {
    let mut state = link.state.lock().unwrap_or_else(|p| p.into_inner());
    if state.forward.is_none() {
        state.forward = connect_forward(link);
    }
    let wrote = match state.forward.as_mut() {
        Some(stream) => stream.write_all(frame).and_then(|()| stream.flush()).is_ok(),
        None => false,
    };
    if !wrote {
        // One reconnect: the destination may have just restarted.
        state.forward = connect_forward(link);
        let rewrote = match state.forward.as_mut() {
            Some(stream) => stream.write_all(frame).and_then(|()| stream.flush()).is_ok(),
            None => false,
        };
        if !rewrote {
            // Destination unreachable: swallow, not delivered.
            state.forward = None;
            return;
        }
    }
    link.delivered.fetch_add(1, Ordering::SeqCst);
}

fn connect_forward(link: &Arc<Link>) -> Option<TcpStream> {
    let target = link.target.lock().unwrap_or_else(|p| p.into_inner()).clone()?;
    let deadline = Instant::now() + FORWARD_CONNECT_TIMEOUT;
    loop {
        match TcpStream::connect(&target) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Some(stream);
            }
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_proto::replication_frame_encoded;
    use star_replication::{EncodedEntry, LogEntry, Payload};

    /// A little sink server that counts and returns the frames it receives.
    struct Sink {
        addr: String,
        frames: Arc<Mutex<Vec<WireMessage>>>,
        done: Arc<AtomicBool>,
        handle: Option<std::thread::JoinHandle<()>>,
    }

    impl Sink {
        fn start() -> Sink {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let frames: Arc<Mutex<Vec<WireMessage>>> = Arc::new(Mutex::new(Vec::new()));
            let done = Arc::new(AtomicBool::new(false));
            let (frames2, done2) = (Arc::clone(&frames), Arc::clone(&done));
            let handle = std::thread::spawn(move || {
                let mut conns: Vec<(TcpStream, FrameBuffer)> = Vec::new();
                let mut chunk = [0u8; 4096];
                while !done2.load(Ordering::SeqCst) {
                    if let Ok((s, _)) = listener.accept() {
                        s.set_nonblocking(true).unwrap();
                        conns.push((s, FrameBuffer::new()));
                    }
                    for (stream, fb) in &mut conns {
                        match stream.read(&mut chunk) {
                            Ok(n) if n > 0 => fb.push(&chunk[..n]),
                            _ => {}
                        }
                        while let Ok(Some(message)) = fb.next_message() {
                            frames2.lock().unwrap().push(message);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            Sink { addr, frames, done, handle: Some(handle) }
        }

        fn received(&self) -> Vec<WireMessage> {
            self.frames.lock().unwrap().clone()
        }
    }

    impl Drop for Sink {
        fn drop(&mut self) {
            self.done.store(true, Ordering::SeqCst);
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }

    fn entry(key: u64) -> EncodedEntry {
        let row = star_common::Row::new(vec![star_common::FieldValue::U64(key * 10)]);
        EncodedEntry::from_owned(LogEntry {
            table: 0,
            partition: 0,
            key,
            tid: star_common::Tid::from_raw(key + 1),
            payload: Payload::Value(row),
        })
    }

    fn send_frames(addr: &str, count: u64) {
        let mut stream = TcpStream::connect(addr).unwrap();
        for k in 0..count {
            let frame = replication_frame_encoded(0, 1, &[entry(k)]);
            stream.write_all(&frame.encode()).unwrap();
        }
        stream.flush().unwrap();
    }

    /// The proxy's per-frame verdicts must be exactly the standalone
    /// plane's: same seed, same link, same sequence.
    #[test]
    fn verdict_stream_matches_standalone_plane() {
        let mesh = ProxyMesh::start(2).unwrap();
        mesh.seed(7);
        mesh.set_link_faults(0, 1, LinkFaults::dropping(0.5));
        let sink = Sink::start();
        mesh.set_target(1, &sink.addr);

        let reference = FaultPlane::default();
        reference.seed(7);
        reference.set_link_faults(0, 1, LinkFaults::dropping(0.5));
        let expect_delivered = (0..40)
            .filter(|_| matches!(reference.roll(0, 1), FaultVerdict::Deliver { .. }))
            .count() as u64;

        send_frames(&mesh.proxy_addr(0, 1), 40);
        let shipped = vec![vec![0, 40], vec![0, 0]];
        mesh.wait_settled(&shipped, Duration::from_secs(10)).unwrap();
        mesh.flush_all();
        assert_eq!(mesh.delivered(0, 1), expect_delivered);
        assert!(expect_delivered > 0 && expect_delivered < 40, "seed 7 must mix verdicts");
    }

    /// Frames on links touching a failed node are swallowed without
    /// consuming link RNG, so the fault stream resumes exactly.
    #[test]
    fn failed_node_gate_preserves_the_fault_stream() {
        let mesh = ProxyMesh::start(2).unwrap();
        mesh.seed(11);
        mesh.set_link_faults(0, 1, LinkFaults::dropping(0.5));
        let sink = Sink::start();
        mesh.set_target(1, &sink.addr);

        let addr = mesh.proxy_addr(0, 1);
        send_frames(&addr, 10);
        mesh.wait_settled(&[vec![0, 10], vec![0, 0]], Duration::from_secs(10)).unwrap();
        let before_failure = mesh.delivered(0, 1);
        mesh.set_node_failed(1, true);
        send_frames(&addr, 25);
        mesh.wait_settled(&[vec![0, 35], vec![0, 0]], Duration::from_secs(10)).unwrap();
        assert_eq!(mesh.delivered(0, 1), before_failure, "gated frames must not deliver");
        mesh.set_node_failed(1, false);
        send_frames(&addr, 10);
        mesh.wait_settled(&[vec![0, 45], vec![0, 0]], Duration::from_secs(10)).unwrap();

        // Reference: 20 rolls with no gap — the 25 gated frames must not
        // have advanced the RNG.
        let reference = FaultPlane::default();
        reference.seed(11);
        reference.set_link_faults(0, 1, LinkFaults::dropping(0.5));
        let expect = (0..20)
            .filter(|_| matches!(reference.roll(0, 1), FaultVerdict::Deliver { .. }))
            .count() as u64;
        assert_eq!(mesh.delivered(0, 1), expect);
    }

    /// Reordered frames are stashed and released by the fence flush, and a
    /// corrupt verdict re-frames a decodable replication frame.
    #[test]
    fn reorder_stash_flushes_and_corrupt_reframes() {
        let mesh = ProxyMesh::start(2).unwrap();
        mesh.seed(3);
        mesh.set_link_faults(0, 1, LinkFaults::reordering(1.0));
        let sink = Sink::start();
        mesh.set_target(1, &sink.addr);
        send_frames(&mesh.proxy_addr(0, 1), 3);
        mesh.wait_settled(&[vec![0, 3], vec![0, 0]], Duration::from_secs(10)).unwrap();
        assert_eq!(mesh.delivered(0, 1), 0, "everything stashed before the flush");
        mesh.flush_all();
        assert_eq!(mesh.delivered(0, 1), 3);
        let deadline = Instant::now() + Duration::from_secs(5);
        while sink.received().len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(sink.received().len(), 3);

        mesh.clear_faults();
        mesh.set_link_faults(0, 1, LinkFaults::corrupting(1.0));
        send_frames(&mesh.proxy_addr(0, 1), 1);
        mesh.wait_settled(&[vec![0, 4], vec![0, 0]], Duration::from_secs(10)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while sink.received().len() < 4 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let received = sink.received();
        let WireMessage::Replication { entries, .. } = &received[3] else {
            panic!("expected a replication frame, got {:?}", received[3]);
        };
        let decoded = split_entry_block(entries).expect("corrupted frame still decodes");
        assert_ne!(
            decoded[0].decode().unwrap().payload,
            entry(0).decode().unwrap().payload,
            "payload must be corrupted"
        );
    }
}
