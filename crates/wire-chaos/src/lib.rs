//! Chaos over the wire: fault injection for the *real* TCP deployment.
//!
//! The simulator's chaos harness (`star-chaos`) proves STAR's protocol
//! properties under seeded faults — but only against the in-memory
//! [`SimNetwork`](star_net::SimNetwork). This crate closes the remaining
//! gap: the same fault plane, the same schedule DSL and the same
//! serializability/parity checks, applied to actual `star-serverd`
//! processes talking TCP.
//!
//! Three pieces:
//!
//! * [`proxy::ProxyMesh`] — a seeded, deterministic interposing proxy per
//!   directed mesh link. Every replication frame is re-framed by the proxy
//!   and subjected to the *same* [`FaultPlane`](star_net::FaultPlane)
//!   verdicts the simulator draws — drop, delay, duplicate, reorder,
//!   corrupt, cut-then-heal — at the socket layer. Same seed, same
//!   per-link message sequence ⇒ byte-for-byte the same fault decisions as
//!   the simulation.
//! * [`lower::lower_schedule`] — compiles a simulator [`FaultSchedule`]
//!   into its wire-executable form. The simulator models a crash as
//!   network isolation (the node keeps executing its doomed epoch, which
//!   a killed process cannot), so `Crash` ops are lowered to the next
//!   fence point; the lowered schedule drives the wire run *and* its
//!   simulation twin, keeping the two trajectories identical.
//! * [`runner`] — the supervisor: drives stepped phases and
//!   failure-aware fences over control connections, SIGKILLs and restarts
//!   nodes, mediates catch-up copies (`FetchPartition` →
//!   `InstallRecords` → `Rejoin`), then compares merged histories,
//!   election logs and replica digests byte-for-byte against the stepped
//!   simulation twin and runs the serializability checker.
//!
//! The committed regression corpus (`tests/chaos_corpus/`) replays
//! unmodified through [`runner::replay_plan_in_process`]; the CI
//! `server-chaos` lane replays it against real killed-and-restarted
//! processes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod control;
pub mod lower;
pub mod plans;
pub mod proxy;
pub mod runner;

pub use cluster::{InProcessCluster, ProcessCluster, WireCluster};
pub use lower::lower_schedule;
pub use proxy::ProxyMesh;
pub use runner::{replay_plan, replay_plan_in_process, replay_plan_with_processes, WireReport};
