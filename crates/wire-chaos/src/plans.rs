//! Canonical wire chaos plans shared by the `star-wire-chaos` binary and
//! the test suites: the probabilistic fault sweep, the SIGKILL/recover
//! cycle, and the deliberately-unsafe negative control.

use star_chaos::{ChaosPlan, FaultOp, FaultSchedule, InjectionPoint, WorkloadSpec};
use star_common::ClusterConfig;
use star_net::LinkFaults;
use std::time::Duration;

/// The bootstrap-expressible cluster shape (what `Bootstrap::parse` builds
/// from a rendered file), so in-process and `star-serverd` runs of the
/// same plan agree on every derived quantity.
pub fn parity_config(
    nodes: usize,
    full_replicas: usize,
    partitions: usize,
    seed: u64,
) -> ClusterConfig {
    ClusterConfig::builder()
        .nodes(nodes)
        .full_replicas(full_replicas)
        .workers_per_node(1)
        .partitions(partitions)
        .seed(seed)
        .network_latency(Duration::ZERO)
        .build()
        .expect("parity config is valid")
}

/// A probabilistic wire-fault sweep plan: duplicates, delays and reorders
/// on every link for two full iterations, then a clean tail iteration.
/// Drops and corruption stay out — those lose committed replication writes,
/// which only a fence-revert (a scheduled crash) may do, and mixing kills
/// with probabilistic faults would split the wire and twin RNG streams
/// (see [`crate::lower`]).
pub fn sweep_plan(seed: u64) -> ChaosPlan {
    let faults = LinkFaults {
        duplicate_probability: 0.2,
        reorder_probability: 0.2,
        delay_probability: 0.25,
        extra_delay: Duration::from_millis(1),
        ..LinkFaults::none()
    };
    ChaosPlan {
        seed,
        label: format!("wire-fault sweep (seed {seed})"),
        config: parity_config(3, 1, 6, seed),
        workload: WorkloadSpec::Ycsb { rows_per_partition: 64 },
        iterations: 3,
        partitioned_txns: 12,
        single_master_txns: 8,
        schedule: FaultSchedule::new()
            .at(0, InjectionPoint::PartitionedStart, FaultOp::SetDefaultFaults(faults))
            .at(1, InjectionPoint::IterationEnd, FaultOp::ClearFaults),
        expect_disk_recovery: false,
    }
}

/// The kill/recover cycle the ISSUE demands: a non-coordinator partial
/// node dies mid-epoch and is caught back up, then the master itself is
/// killed (electing nobody — no full replica remains), recovered, and
/// deterministically re-elected.
pub fn kill_recover_plan(seed: u64) -> ChaosPlan {
    ChaosPlan {
        seed,
        label: format!("SIGKILL/recover cycle (seed {seed})"),
        config: parity_config(3, 1, 6, seed),
        workload: WorkloadSpec::Ycsb { rows_per_partition: 64 },
        iterations: 5,
        partitioned_txns: 12,
        single_master_txns: 8,
        schedule: FaultSchedule::new()
            .at(0, InjectionPoint::MidPartitioned, FaultOp::Crash(2))
            .at(1, InjectionPoint::IterationEnd, FaultOp::Recover(2))
            .at(2, InjectionPoint::MidSingleMaster, FaultOp::Crash(0))
            .at(3, InjectionPoint::IterationEnd, FaultOp::Recover(0)),
        expect_disk_recovery: false,
    }
}

/// The negative parity control: the proxy silently drops every frame from
/// partition 1's primary to the master during a *committed* epoch, with no
/// crash to revert it — the same deliberately-unsafe schedule as the
/// simulator's `unforgiven_message_loss` control. The twin loses the same
/// frames, so wire and twin stay byte-identical — and both are wrong: the
/// serializability checker must go red. Proves the wire harness detects
/// real protocol violations rather than vacuously passing.
pub fn negative_control_plan(seed: u64) -> ChaosPlan {
    ChaosPlan {
        seed,
        label: format!("unforgiven message loss (seed {seed})"),
        config: ClusterConfig::builder()
            .nodes(4)
            .full_replicas(1)
            .workers_per_node(1)
            .partitions(4)
            .replication_factor(3)
            .iteration(Duration::from_millis(5))
            .network_latency(Duration::from_micros(20))
            .seed(seed)
            .build()
            .expect("negative control config is valid"),
        workload: WorkloadSpec::Kv { rows_per_partition: 4 },
        iterations: 4,
        partitioned_txns: 16,
        single_master_txns: 32,
        schedule: FaultSchedule::new()
            .at(1, InjectionPoint::PartitionedStart, FaultOp::CutLink(1, 0))
            .at(1, InjectionPoint::BeforeFirstFence, FaultOp::HealLink(1, 0)),
        expect_disk_recovery: false,
    }
}
