//! Synchronous control-plane connections from the chaos supervisor to one
//! node — the same request/response framing `star-serverd`'s coordinator
//! uses, with boot-friendly connect retries (a just-restarted node may not
//! be listening yet).

use star_proto::{read_message, write_message, Request, Response, Role, WireMessage};
use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long connects retry before giving up (covers process restarts).
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// How long one request may block. Fences legitimately wait for in-flight
/// replication, so this is generous.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(120);

/// One supervisor connection to one node.
pub struct Conn {
    stream: TcpStream,
    next_id: u64,
}

impl Conn {
    /// Connects and handshakes, retrying while the peer boots.
    pub fn connect(addr: &str) -> io::Result<Conn> {
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
        let mut conn = Conn { stream, next_id: 0 };
        write_message(&mut conn.stream, &WireMessage::Hello { role: Role::Admin, node: 0 })?;
        match read_message(&mut conn.stream)? {
            WireMessage::HelloAck { .. } => Ok(conn),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected HelloAck, got {other:?}"),
            )),
        }
    }

    /// Sends one request and blocks for its response.
    pub fn request(&mut self, body: Request) -> io::Result<Response> {
        self.next_id += 1;
        let id = self.next_id;
        write_message(&mut self.stream, &WireMessage::Request { id, body })?;
        loop {
            match read_message(&mut self.stream)? {
                WireMessage::Response { id: got, body } if got == id => return Ok(body),
                WireMessage::Response { .. } => continue,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected Response, got {other:?}"),
                    ))
                }
            }
        }
    }
}
