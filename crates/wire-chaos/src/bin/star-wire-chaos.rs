//! Wire chaos driver: replays fault schedules against a real TCP STAR
//! cluster behind fault-injecting proxies and diffs the result against the
//! in-memory simulation twin.
//!
//! Modes (combine freely; at least one is required):
//!
//! ```text
//! star-wire-chaos --replay-corpus          # committed corpus entries, over the wire
//! star-wire-chaos --sweep --seeds 8        # seeded duplicate/delay/reorder sweep
//! star-wire-chaos --kill-recover           # kill/restart/re-election cycle
//! star-wire-chaos --kill-recover --serverd target/release/star-serverd
//! ```
//!
//! Without `--serverd`, clusters are in-process `NodeServer`s; with it, the
//! kill/recover cycle spawns real `star-serverd` processes and kills them
//! with SIGKILL. Exits non-zero if any replay fails.

use star_wire_chaos::plans::{kill_recover_plan, sweep_plan};
use star_wire_chaos::{replay_plan_in_process, replay_plan_with_processes, WireReport};
use std::path::PathBuf;

fn main() {
    let mut replay_corpus = false;
    let mut sweep = false;
    let mut kill_recover = false;
    let mut seeds: u64 = 4;
    let mut serverd: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--replay-corpus" => replay_corpus = true,
            "--sweep" => sweep = true,
            "--kill-recover" => kill_recover = true,
            "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => die("--seeds needs a number"),
            },
            "--serverd" => match args.next() {
                Some(path) => serverd = Some(PathBuf::from(path)),
                None => die("--serverd needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: star-wire-chaos [--replay-corpus] [--sweep [--seeds N]] \
                     [--kill-recover [--serverd PATH]]"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if !replay_corpus && !sweep && !kill_recover {
        die("pick at least one of --replay-corpus, --sweep, --kill-recover");
    }

    let mut failures = 0usize;
    if replay_corpus {
        for (name, _description, category, plan) in star_chaos::corpus::committed_entries() {
            let outcome = replay_plan_in_process(&plan);
            failures += note(&format!("corpus/{category}/{name}"), outcome);
        }
    }
    if sweep {
        for seed in 0..seeds {
            let outcome = replay_plan_in_process(&sweep_plan(seed));
            failures += note(&format!("sweep/seed-{seed}"), outcome);
        }
    }
    if kill_recover {
        let plan = kill_recover_plan(9);
        let outcome = match &serverd {
            None => replay_plan_in_process(&plan),
            Some(binary) => replay_plan_with_processes(&plan, binary),
        };
        let label =
            if serverd.is_some() { "kill-recover/serverd" } else { "kill-recover/in-process" };
        failures += note(label, outcome);
    }

    if failures > 0 {
        eprintln!("star-wire-chaos: {failures} replay(s) failed");
        std::process::exit(1);
    }
    println!("star-wire-chaos: all replays passed");
}

fn die(message: &str) -> ! {
    eprintln!("star-wire-chaos: {message}");
    std::process::exit(2);
}

/// Prints one replay outcome; returns 1 if it failed.
fn note(label: &str, outcome: Result<WireReport, String>) -> usize {
    match outcome {
        Ok(report) if report.passed() => {
            println!("PASS {label} seed={} committed={}", report.seed, report.committed);
            0
        }
        Ok(report) => {
            println!("FAIL {label} seed={} committed={}", report.seed, report.committed);
            for violation in &report.violations {
                println!("  - {violation}");
            }
            1
        }
        Err(e) => {
            println!("ERROR {label}: {e}");
            1
        }
    }
}
