//! The wire chaos runner: drives a [`ChaosPlan`] against a real TCP
//! cluster behind the fault-injecting proxy mesh, runs the in-memory
//! simulation twin on the same (lowered) schedule, and compares the two
//! trajectories byte-for-byte.
//!
//! The runner plays the role the simulated engine's control loop plays in
//! `star_chaos::run_plan`: it owns the epoch counter, the failure picture,
//! the deterministic election mirror and the cumulative per-executor
//! transaction baselines, and lowers every schedule op to wire actions —
//! `Crash` becomes a real process/server kill at the detecting fence (see
//! [`crate::lower`]), `Recover` becomes a restart plus a catch-up copy
//! over `FetchPartition`/`InstallRecords` plus a `Rejoin`, and link ops
//! program the proxy fault plane.
//!
//! Verification at the end of a run, mirroring the transport-parity tests:
//!
//! * merged committed histories (kill-time archives + live nodes), stable
//!   sorted by `(epoch, executor)`, must be byte-identical to the twin's
//!   under `encode_history`;
//! * every live node's election log must be byte-identical to the twin's
//!   under `encode_elections` (and to the runner's own mirror);
//! * every live node's replica digest must equal the twin's replica of the
//!   same node id;
//! * the merged wire history must pass the serializability checker.

use crate::cluster::{InProcessCluster, WireCluster};
use crate::control::Conn;
use crate::lower::lower_schedule;
use crate::proxy::ProxyMesh;
use star_chaos::{check_history, ChaosPlan, FaultOp, FaultSchedule, InjectionPoint, WorkloadSpec};
use star_common::{ClusterConfig, Epoch};
use star_core::history::CommittedTxn;
use star_core::testing::KvWorkload;
use star_core::{
    FailureCase, HistoryRecorder, MasterElection, RecoveryFault, StarEngine, Workload,
};
use star_proto::{
    encode_elections, encode_history, AdminQuery, Request, Response, WireElection, WirePhase,
};
use star_serverd::replica_digest;
use star_workloads::{YcsbConfig, YcsbWorkload};
use std::sync::Arc;
use std::time::Duration;

/// How long the runner waits for in-flight frames to settle in the proxy
/// mesh before a fence.
const SETTLE_TIMEOUT: Duration = Duration::from_secs(30);

/// The outcome of one wire chaos replay.
#[derive(Debug)]
pub struct WireReport {
    /// The plan's label.
    pub label: String,
    /// The plan's seed.
    pub seed: u64,
    /// Transactions in the merged wire history.
    pub committed: u64,
    /// Everything that went wrong: parity mismatches, serializability
    /// violations, infeasible recoveries. Empty means the replay passed.
    pub violations: Vec<String>,
}

impl WireReport {
    /// Whether the replay passed (no violations of any kind).
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Builds the workload a plan describes — the same construction
/// `star_chaos::run_plan` uses, so wire and twin draw identical
/// transaction streams.
pub fn build_workload(spec: &WorkloadSpec, partitions: usize) -> Arc<dyn Workload> {
    match spec {
        WorkloadSpec::Kv { rows_per_partition } => Arc::new(KvWorkload {
            partitions,
            rows_per_partition: *rows_per_partition,
            cross_partition_fraction: 0.3,
        }),
        WorkloadSpec::Ycsb { rows_per_partition } => Arc::new(YcsbWorkload::new(YcsbConfig {
            partitions,
            rows_per_partition: *rows_per_partition,
            ops_per_transaction: 4,
            read_fraction: 0.5,
            zipf_theta: 0.0,
            cross_partition_fraction: 0.3,
        })),
    }
}

/// Replays `plan` against a cluster the caller booted behind `proxies`,
/// plus the simulation twin, and returns the comparison. The schedule is
/// lowered internally; plans carrying disk-simulation ops are an error.
pub fn replay_plan(
    plan: &ChaosPlan,
    cluster: &mut dyn WireCluster,
    proxies: &ProxyMesh,
) -> Result<WireReport, String> {
    if plan.expect_disk_recovery {
        return Err(format!(
            "plan `{}` expects Case-4 disk recovery, which has no wire equivalent",
            plan.label
        ));
    }
    let schedule = lower_schedule(&plan.schedule)?;
    proxies.seed(plan.seed);

    let mut runner = WireRunner::new(plan, schedule.clone(), cluster, proxies)?;
    runner.run()?;
    let WireOutcome {
        history: wire_history,
        elections: wire_elections,
        digests: wire_digests,
        live,
        mirror,
        mut violations,
    } = runner.finish()?;

    let (twin, mut twin_history, twin_violations) = run_twin(plan, &schedule)?;
    violations.extend(twin_violations.into_iter().map(|v| format!("twin: {v}")));
    // The twin records stepped half-phases interleaved across executors;
    // the wire merge is grouped per executor. The same stable sort puts
    // both in (epoch, executor) order without disturbing per-executor
    // program order, so the byte comparison sees canonical forms.
    twin_history.sort_by_key(|t| (t.epoch, t.executor));

    if encode_history(&wire_history) != encode_history(&twin_history) {
        let first_diff = wire_history
            .iter()
            .zip(twin_history.iter())
            .enumerate()
            .find(|(_, (w, t))| {
                encode_history(std::slice::from_ref(w)) != encode_history(std::slice::from_ref(t))
            })
            .map(|(i, (w, t))| format!("; first divergence at txn {i}: wire {w:?} vs twin {t:?}"))
            .unwrap_or_default();
        violations.push(format!(
            "wire and twin histories diverge ({} wire txns vs {} twin txns){first_diff}",
            wire_history.len(),
            twin_history.len()
        ));
    }

    let twin_elections = encode_elections(twin.elections());
    if encode_elections(&mirror) != twin_elections {
        violations.push(format!(
            "runner election mirror diverges from the twin: {mirror:?} vs {:?}",
            twin.elections()
        ));
    }
    for (node, log) in &wire_elections {
        let encoded = encode_elections(&log.iter().map(|e| (*e).to_election()).collect::<Vec<_>>());
        if encoded != twin_elections {
            violations.push(format!("node {node} election log diverges from the twin"));
        }
    }

    for (node, digest) in &wire_digests {
        let Some(twin_node) = twin.cluster().nodes().get(*node) else {
            violations.push(format!("node {node} has no twin counterpart"));
            continue;
        };
        let twin_digest = replica_digest(&twin_node.db);
        if *digest != twin_digest {
            violations.push(format!(
                "node {node} replica diverges: wire {digest:?} vs twin {twin_digest:?}"
            ));
        }
    }

    let report = check_history(&wire_history);
    if !report.is_serializable() {
        violations.push(format!("wire history is not serializable: {:?}", report.violation));
    }

    let _ = live;
    Ok(WireReport {
        label: plan.label.clone(),
        seed: plan.seed,
        committed: wire_history.len() as u64,
        violations,
    })
}

/// Convenience wrapper: boots an in-process cluster behind a fresh proxy
/// mesh and replays `plan` against it.
pub fn replay_plan_in_process(plan: &ChaosPlan) -> Result<WireReport, String> {
    let proxies = ProxyMesh::start(plan.config.num_nodes)
        .map_err(|e| format!("cannot start proxy mesh: {e}"))?;
    let workload = build_workload(&plan.workload, plan.config.partitions);
    let mut cluster = InProcessCluster::start(plan.config.clone(), workload, &proxies)?;
    let report = replay_plan(plan, &mut cluster, &proxies);
    proxies.shutdown();
    report
}

/// Replays `plan` against real `star-serverd` child processes spawned
/// from `binary`, killed with SIGKILL and restarted by the supervisor.
/// The rendered bootstrap files must reproduce the plan's config and
/// workload exactly, so only bootstrap-expressible plans are accepted:
/// the [`crate::plans::parity_config`] cluster shape and the chaos YCSB
/// workload knobs.
pub fn replay_plan_with_processes(
    plan: &ChaosPlan,
    binary: &std::path::Path,
) -> Result<WireReport, String> {
    let rows = match plan.workload {
        WorkloadSpec::Ycsb { rows_per_partition } => rows_per_partition,
        WorkloadSpec::Kv { .. } => {
            return Err("star-serverd bootstraps only express YCSB workloads".to_string())
        }
    };
    let config = plan.config.clone();
    let expressible = crate::plans::parity_config(
        config.num_nodes,
        config.full_replicas,
        config.partitions,
        config.seed,
    );
    if config != expressible {
        return Err(format!(
            "plan `{}` uses a cluster shape the bootstrap grammar cannot express",
            plan.label
        ));
    }
    let dir =
        std::env::temp_dir().join(format!("star-wire-chaos-{}-{}", std::process::id(), plan.seed));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let proxies =
        ProxyMesh::start(config.num_nodes).map_err(|e| format!("cannot start proxy mesh: {e}"))?;
    let render = |addrs: &[String]| {
        format!(
            "[cluster]\nnodes = [{}]\nfull_replicas = {}\nworkers_per_node = {}\n\
             partitions = {}\nseed = {}\n\n[workload]\nrows_per_partition = {}\n\
             ops_per_transaction = 4\nread_pct = 50.0\ncross_partition_pct = 30.0\n",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(", "),
            config.full_replicas,
            config.workers_per_node,
            config.partitions,
            config.seed,
            rows,
        )
    };
    let mut cluster =
        crate::cluster::ProcessCluster::start(binary, config.num_nodes, &proxies, &dir, render)?;
    let report = replay_plan(plan, &mut cluster, &proxies);
    proxies.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Everything the wire side hands to the comparison phase.
struct WireOutcome {
    history: Vec<CommittedTxn>,
    elections: Vec<(usize, Vec<WireElection>)>,
    digests: Vec<(usize, (u64, u64))>,
    live: Vec<usize>,
    mirror: Vec<MasterElection>,
    violations: Vec<String>,
}

/// The wire-side control loop (see module docs).
struct WireRunner<'a> {
    plan: &'a ChaosPlan,
    schedule: FaultSchedule,
    cluster: &'a mut dyn WireCluster,
    proxies: &'a ProxyMesh,
    config: ClusterConfig,
    epoch: Epoch,
    last_committed: Epoch,
    failed: Vec<bool>,
    /// The runner's deterministic election mirror — same rule as the
    /// engine: winner is the lowest-id healthy full replica; a new entry is
    /// pushed only when the winner changes.
    elections: Vec<MasterElection>,
    /// Cumulative transaction attempts per partition / per master worker —
    /// the fast-forward baselines shipped with every `RunPhase`.
    partition_baselines: Vec<u64>,
    master_baselines: Vec<u64>,
    /// `last_sent[s][t]`: cumulative frames node `s` has shipped towards
    /// `t`, rebased across restarts (a restarted node's mesh counters reset
    /// to zero; `sent_offsets` carries the pre-restart totals).
    last_sent: Vec<Vec<u64>>,
    sent_offsets: Vec<Vec<u64>>,
    /// Committed histories snapshotted from nodes at kill time (their
    /// recorders are volatile and die with the process).
    archived_history: Vec<CommittedTxn>,
    /// Kills requested by `RecoverInterrupted(SourceCrash)` side effects;
    /// executed at the next fence point, where the lowered schedule would
    /// place them.
    pending_kills: Vec<usize>,
    conns: Vec<Option<Conn>>,
    violations: Vec<String>,
}

impl<'a> WireRunner<'a> {
    fn new(
        plan: &'a ChaosPlan,
        schedule: FaultSchedule,
        cluster: &'a mut dyn WireCluster,
        proxies: &'a ProxyMesh,
    ) -> Result<WireRunner<'a>, String> {
        let config = plan.config.clone();
        let n = config.num_nodes;
        let initial_master = (config.full_replicas > 0).then(|| config.master_node());
        let mut conns = Vec::with_capacity(n);
        for node in 0..n {
            let addr = cluster.control_addr(node);
            let conn = Conn::connect(&addr)
                .map_err(|e| format!("cannot connect to node {node} at {addr}: {e}"))?;
            conns.push(Some(conn));
        }
        Ok(WireRunner {
            plan,
            schedule,
            cluster,
            proxies,
            epoch: 1,
            last_committed: 0,
            failed: vec![false; n],
            elections: vec![MasterElection { epoch: 0, master: initial_master, generation: 0 }],
            partition_baselines: vec![0; config.partitions],
            master_baselines: vec![0; config.workers_per_node],
            last_sent: vec![vec![0; n]; n],
            sent_offsets: vec![vec![0; n]; n],
            archived_history: Vec::new(),
            pending_kills: Vec::new(),
            conns,
            violations: Vec::new(),
            config,
        })
    }

    fn run(&mut self) -> Result<(), String> {
        use InjectionPoint::*;
        for iteration in 0..self.plan.iterations {
            let first_half_p = self.plan.partitioned_txns / 2;
            let second_half_p = self.plan.partitioned_txns - first_half_p;
            let first_half_s = self.plan.single_master_txns / 2;
            let second_half_s = self.plan.single_master_txns - first_half_s;

            self.apply_ops(iteration, PartitionedStart)?;
            self.run_partitioned(first_half_p)?;
            self.apply_ops(iteration, MidPartitioned)?;
            self.run_partitioned(second_half_p)?;
            self.apply_ops(iteration, BeforeFirstFence)?;
            self.fence()?;
            self.apply_ops(iteration, SingleMasterStart)?;
            self.run_single_master(first_half_s)?;
            self.apply_ops(iteration, MidSingleMaster)?;
            self.run_single_master(second_half_s)?;
            self.apply_ops(iteration, BeforeSecondFence)?;
            self.fence()?;
            self.apply_ops(iteration, IterationEnd)?;
        }
        Ok(())
    }

    fn failed_ids(&self) -> Vec<u32> {
        self.failed.iter().enumerate().filter_map(|(n, &f)| f.then_some(n as u32)).collect()
    }

    /// Whether the partitioned phase runs at all in the current failure
    /// picture — same gate as the engine (`FailureCase::available`).
    fn partitioned_available(&self) -> bool {
        FailureCase::classify(&self.config, &self.failed).map(|c| c.available()).unwrap_or(false)
    }

    fn current_master(&self) -> Option<usize> {
        self.elections.last().and_then(|e| e.master)
    }

    fn request(&mut self, node: usize, body: Request) -> Result<Response, String> {
        let conn = self.conns[node]
            .as_mut()
            .ok_or_else(|| format!("no connection to node {node} (it is down)"))?;
        conn.request(body).map_err(|e| format!("request to node {node} failed: {e}"))
    }

    /// Folds a node's cumulative `PhaseDone.sent` counters (which reset to
    /// zero across restarts) into the runner's rebased shipping totals.
    fn note_sent(&mut self, node: usize, sent: &[u64]) {
        for (t, &count) in sent.iter().enumerate() {
            self.last_sent[node][t] = self.sent_offsets[node][t] + count;
        }
    }

    fn run_partitioned(&mut self, txns: u64) -> Result<(), String> {
        if txns == 0 || !self.partitioned_available() {
            return Ok(());
        }
        let failed = self.failed_ids();
        let baselines = self.partition_baselines.clone();
        for node in 0..self.config.num_nodes {
            if self.failed[node] {
                continue;
            }
            let response = self.request(
                node,
                Request::RunPhase {
                    phase: WirePhase::Partitioned,
                    epoch: self.epoch,
                    txns,
                    baselines: baselines.clone(),
                    failed: failed.clone(),
                },
            )?;
            match response {
                Response::PhaseDone { sent, .. } => self.note_sent(node, &sent),
                other => return Err(format!("node {node}: expected PhaseDone, got {other:?}")),
            }
        }
        // Every partition has an effective primary when the system is
        // available, so every partition's stream advanced.
        for baseline in &mut self.partition_baselines {
            *baseline += txns;
        }
        Ok(())
    }

    fn run_single_master(&mut self, txns: u64) -> Result<(), String> {
        let Some(master) = self.current_master() else { return Ok(()) };
        if txns == 0 {
            return Ok(());
        }
        let response = self.request(
            master,
            Request::RunPhase {
                phase: WirePhase::SingleMaster,
                epoch: self.epoch,
                txns,
                baselines: self.master_baselines.clone(),
                failed: self.failed_ids(),
            },
        )?;
        match response {
            Response::PhaseDone { sent, .. } => self.note_sent(master, &sent),
            other => return Err(format!("node {master}: expected PhaseDone, got {other:?}")),
        }
        for baseline in &mut self.master_baselines {
            *baseline += txns;
        }
        Ok(())
    }

    /// Applies every scheduled op at `(iteration, point)`, plus any pending
    /// kills when the point is a fence boundary. Ops touch the proxy fault
    /// plane, so in-flight frames are settled first — the simulator applies
    /// ops between stepped halves with nothing in flight.
    fn apply_ops(&mut self, iteration: usize, point: InjectionPoint) -> Result<(), String> {
        let ops: Vec<FaultOp> = self.schedule.ops_at(iteration, point).cloned().collect();
        let fence_point =
            matches!(point, InjectionPoint::BeforeFirstFence | InjectionPoint::BeforeSecondFence);
        let must_flush_kills = fence_point && !self.pending_kills.is_empty();
        if ops.is_empty() && !must_flush_kills {
            return Ok(());
        }
        self.settle()?;
        for op in ops {
            self.apply_op(&op)?;
        }
        if fence_point {
            for node in std::mem::take(&mut self.pending_kills) {
                self.do_kill(node)?;
            }
        }
        Ok(())
    }

    fn apply_op(&mut self, op: &FaultOp) -> Result<(), String> {
        match op {
            FaultOp::Crash(node) => self.do_kill(*node),
            FaultOp::Recover(node) => self.do_recover(*node),
            FaultOp::RecoverInterrupted(node, fault) => self.do_recover_interrupted(*node, *fault),
            FaultOp::CutLink(a, b) => {
                self.proxies.cut_link(*a, *b);
                Ok(())
            }
            FaultOp::HealLink(a, b) => {
                self.proxies.heal_link(*a, *b);
                Ok(())
            }
            FaultOp::SetLinkFaults(from, to, faults) => {
                self.proxies.set_link_faults(*from, *to, *faults);
                Ok(())
            }
            FaultOp::SetDefaultFaults(faults) => {
                self.proxies.set_default_faults(*faults);
                Ok(())
            }
            FaultOp::ClearFaults => {
                self.proxies.clear_faults();
                Ok(())
            }
            // `lower_schedule` rejects these before the run starts.
            FaultOp::Checkpoint | FaultOp::TruncateWal(..) => {
                Err(format!("unlowerable op {op:?} reached the wire runner"))
            }
        }
    }

    /// Archives the node's committed history, then kills it for real. The
    /// next fence carries the node in its `failed` list, which is what
    /// makes the survivors revert the in-flight epoch.
    fn do_kill(&mut self, node: usize) -> Result<(), String> {
        if self.failed[node] {
            return Ok(());
        }
        match self.request(node, Request::Admin(AdminQuery::History))? {
            Response::History(txns) => {
                self.archived_history.extend(txns.iter().map(|t| t.to_committed()));
            }
            other => return Err(format!("node {node}: expected History, got {other:?}")),
        }
        self.conns[node] = None;
        self.cluster.kill(node)?;
        self.proxies.set_node_failed(node, true);
        self.failed[node] = true;
        Ok(())
    }

    /// Restarts `node`, catches its fresh replica up from healthy holders
    /// (the wire form of the engine's `recover_node` copy loop) and rejoins
    /// it to the cluster's epoch/election/counter state.
    fn do_recover(&mut self, node: usize) -> Result<(), String> {
        if self.failed.get(node) != Some(&true) {
            return Ok(());
        }
        let held: Vec<usize> = (0..self.config.partitions)
            .filter(|&p| self.config.node_stores_partition(node, p))
            .collect();
        let Some(sources) = self.recovery_sources(node, &held) else {
            // Same typed failure (and violation phrasing) as the simulator
            // driver when no healthy replica can source the copy.
            self.violations.push(format!(
                "scheduled recovery of node {node} failed: no healthy replica holds every \
                 partition it needs"
            ));
            return Ok(());
        };
        let addr = self.cluster.restart(node)?;
        self.proxies.set_target(node, &addr);
        if let (Some(offset), Some(sent)) =
            (self.sent_offsets.get_mut(node), self.last_sent.get(node))
        {
            *offset = sent.clone();
        }
        let conn = Conn::connect(&addr)
            .map_err(|e| format!("cannot reconnect to restarted node {node}: {e}"))?;
        if let Some(slot) = self.conns.get_mut(node) {
            *slot = Some(conn);
        }

        for (partition, source) in held.iter().copied().zip(sources) {
            let records = match self
                .request(source, Request::FetchPartition { partition: partition as u32 })?
            {
                Response::Records(records) => records,
                other => return Err(format!("node {source}: expected Records, got {other:?}")),
            };
            match self.request(node, Request::InstallRecords { records })? {
                Response::InstallDone { .. } => {}
                other => return Err(format!("node {node}: expected InstallDone, got {other:?}")),
            }
        }

        if let Some(failed) = self.failed.get_mut(node) {
            *failed = false;
        }
        self.proxies.set_node_failed(node, false);
        let rejoin = Request::Rejoin {
            epoch: self.epoch,
            last_committed: self.last_committed,
            failed: self.failed_ids(),
            elections: self.elections.iter().map(WireElection::from_election).collect(),
            recv_base: (0..self.config.num_nodes)
                .map(|s| self.proxies.delivered(s, node))
                .collect(),
        };
        match self.request(node, rejoin)? {
            Response::Ok => Ok(()),
            other => Err(format!("node {node}: expected Ok to Rejoin, got {other:?}")),
        }
    }

    /// The wire form of the engine's interrupted recovery: the target stays
    /// down (a fresh process never rejoined), and only the interruption's
    /// side effect lands — a doomed source, or a cut source→target link.
    /// The state the engine's partial copy would leave behind is erased by
    /// the eventual full recovery, so omitting the copy is unobservable.
    fn do_recover_interrupted(&mut self, node: usize, fault: RecoveryFault) -> Result<(), String> {
        if self.failed.get(node) != Some(&true) {
            return Ok(());
        }
        let held: Vec<usize> = (0..self.config.partitions)
            .filter(|&p| self.config.node_stores_partition(node, p))
            .collect();
        let Some(sources) = self.recovery_sources(node, &held) else {
            self.violations.push(format!(
                "scheduled recovery of node {node} failed: no healthy replica holds every \
                 partition it needs"
            ));
            return Ok(());
        };
        let source = match sources.first() {
            Some(&source) => source,
            None => return Ok(()),
        };
        match fault {
            RecoveryFault::SourceCrash => self.pending_kills.push(source),
            RecoveryFault::TargetCrash => {}
            RecoveryFault::LinkCut => self.proxies.cut_link(source, node),
        }
        Ok(())
    }

    /// For each held partition (ascending), the lowest-id healthy node that
    /// also holds it — the engine's source-selection rule. `None` if any
    /// partition has no healthy holder.
    fn recovery_sources(&self, node: usize, held: &[usize]) -> Option<Vec<usize>> {
        held.iter()
            .map(|&p| {
                (0..self.config.num_nodes).find(|&s| {
                    s != node
                        && self.failed.get(s) == Some(&false)
                        && self.config.node_stores_partition(s, p)
                })
            })
            .collect()
    }

    /// Waits until the proxies have verdicted every frame the nodes report
    /// having shipped, then releases any reorder stashes.
    fn settle(&mut self) -> Result<(), String> {
        self.proxies.wait_settled(&self.last_sent, SETTLE_TIMEOUT)?;
        self.proxies.flush_all();
        Ok(())
    }

    /// Closes the current epoch on every live node, mirrors the engine's
    /// fence-time election rule, and advances the epoch.
    fn fence(&mut self) -> Result<(), String> {
        self.settle()?;
        let delivered = self.proxies.delivered_matrix();
        let failed = self.failed_ids();
        let live: Vec<usize> = (0..self.config.num_nodes).filter(|&n| !self.failed[n]).collect();
        for node in live {
            let expected: Vec<u64> =
                (0..self.config.num_nodes).map(|s| delivered[s][node]).collect();
            match self.request(
                node,
                Request::Fence { epoch: self.epoch, expected, failed: failed.clone() },
            )? {
                Response::FenceDone { epoch, .. } if epoch == self.epoch => {}
                Response::FenceDone { epoch, .. } => {
                    return Err(format!(
                        "node {node} fenced epoch {epoch}, supervisor expected {}",
                        self.epoch
                    ))
                }
                other => return Err(format!("node {node}: expected FenceDone, got {other:?}")),
            }
        }
        // Deterministic election, same rule as the engine: lowest-id
        // healthy full replica, new entry only when the winner changes.
        let winner = (0..self.config.full_replicas).find(|&n| !self.failed[n]);
        let last = self.elections.last().expect("election log starts non-empty");
        if winner != last.master {
            let generation = last.generation + 1;
            self.elections.push(MasterElection { epoch: self.epoch, master: winner, generation });
        }
        self.last_committed = self.epoch;
        self.epoch += 1;
        Ok(())
    }

    /// Collects the merged history, per-live-node election logs and
    /// digests after the run.
    fn finish(mut self) -> Result<WireOutcome, String> {
        let mut history = std::mem::take(&mut self.archived_history);
        let mut elections = Vec::new();
        let mut digests = Vec::new();
        let mut live = Vec::new();
        for node in 0..self.config.num_nodes {
            if self.failed[node] {
                continue;
            }
            live.push(node);
            match self.request(node, Request::Admin(AdminQuery::History))? {
                Response::History(txns) => history.extend(txns.iter().map(|t| t.to_committed())),
                other => return Err(format!("node {node}: expected History, got {other:?}")),
            }
            match self.request(node, Request::Admin(AdminQuery::Elections))? {
                Response::Elections(log) => elections.push((node, log)),
                other => return Err(format!("node {node}: expected Elections, got {other:?}")),
            }
            match self.request(node, Request::Admin(AdminQuery::ReplicaDigest))? {
                Response::Digest { records, digest } => digests.push((node, (records, digest))),
                other => return Err(format!("node {node}: expected Digest, got {other:?}")),
            }
        }
        // Per-node histories are in execution order; the stable sort by
        // (epoch, executor) interleaves them into the twin's global order.
        history.sort_by_key(|t| (t.epoch, t.executor));
        Ok(WireOutcome {
            history,
            elections,
            digests,
            live,
            mirror: self.elections,
            violations: self.violations,
        })
    }
}

/// Runs the simulation twin over the *lowered* schedule — the same loop as
/// `star_chaos::run_plan`, minus the disk ops lowering already rejected.
fn run_twin(
    plan: &ChaosPlan,
    schedule: &FaultSchedule,
) -> Result<(StarEngine, Vec<CommittedTxn>, Vec<String>), String> {
    let workload = build_workload(&plan.workload, plan.config.partitions);
    let mut engine =
        StarEngine::new(plan.config.clone(), workload).map_err(|e| format!("twin engine: {e}"))?;
    let recorder = Arc::new(HistoryRecorder::new());
    engine.set_history_recorder(Arc::clone(&recorder));
    engine.cluster().network().seed_faults(plan.seed);

    let mut violations = Vec::new();
    let apply = |engine: &mut StarEngine, op: &FaultOp, violations: &mut Vec<String>| match op {
        FaultOp::Crash(node) => engine.inject_failure(*node),
        FaultOp::Recover(node) => {
            if let Err(e) = engine.recover_node(*node) {
                violations.push(format!("scheduled recovery of node {node} failed: {e}"));
            }
        }
        FaultOp::RecoverInterrupted(node, fault) => {
            if let Err(e) = engine.recover_node_interrupted(*node, *fault) {
                violations.push(format!("scheduled recovery of node {node} failed: {e}"));
            }
        }
        FaultOp::CutLink(a, b) => engine.cluster().network().cut_link(*a, *b),
        FaultOp::HealLink(a, b) => engine.cluster().network().heal_link(*a, *b),
        FaultOp::SetLinkFaults(from, to, faults) => {
            engine.cluster().network().set_link_faults(*from, *to, *faults)
        }
        FaultOp::SetDefaultFaults(faults) => {
            engine.cluster().network().set_default_link_faults(*faults)
        }
        FaultOp::ClearFaults => engine.cluster().network().clear_link_faults(),
        FaultOp::Checkpoint | FaultOp::TruncateWal(..) => {
            violations.push(format!("unlowerable op {op:?} reached the twin"));
        }
    };

    for iteration in 0..plan.iterations {
        use InjectionPoint::*;
        let first_half_p = plan.partitioned_txns / 2;
        let second_half_p = plan.partitioned_txns - first_half_p;
        let first_half_s = plan.single_master_txns / 2;
        let second_half_s = plan.single_master_txns - first_half_s;

        for op in schedule.ops_at(iteration, PartitionedStart).cloned().collect::<Vec<_>>() {
            apply(&mut engine, &op, &mut violations);
        }
        engine.run_partitioned_phase_stepped(first_half_p);
        for op in schedule.ops_at(iteration, MidPartitioned).cloned().collect::<Vec<_>>() {
            apply(&mut engine, &op, &mut violations);
        }
        engine.run_partitioned_phase_stepped(second_half_p);
        for op in schedule.ops_at(iteration, BeforeFirstFence).cloned().collect::<Vec<_>>() {
            apply(&mut engine, &op, &mut violations);
        }
        engine.fence();
        for op in schedule.ops_at(iteration, SingleMasterStart).cloned().collect::<Vec<_>>() {
            apply(&mut engine, &op, &mut violations);
        }
        engine.run_single_master_phase_stepped(first_half_s);
        for op in schedule.ops_at(iteration, MidSingleMaster).cloned().collect::<Vec<_>>() {
            apply(&mut engine, &op, &mut violations);
        }
        engine.run_single_master_phase_stepped(second_half_s);
        for op in schedule.ops_at(iteration, BeforeSecondFence).cloned().collect::<Vec<_>>() {
            apply(&mut engine, &op, &mut violations);
        }
        engine.fence();
        for op in schedule.ops_at(iteration, IterationEnd).cloned().collect::<Vec<_>>() {
            apply(&mut engine, &op, &mut violations);
        }
    }
    engine.quiesce();
    let history = recorder.committed();
    Ok((engine, history, violations))
}
