//! Cluster bootstrap files.
//!
//! A deployment is described by one small TOML-subset file shared by every
//! node, the client and the admin CLI:
//!
//! ```toml
//! [cluster]
//! nodes = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"]
//! full_replicas = 1
//! workers_per_node = 1
//! partitions = 6
//! seed = 42
//!
//! [workload]
//! rows_per_partition = 200
//! ops_per_transaction = 10
//! read_pct = 90.0
//! cross_partition_pct = 10.0
//! ```
//!
//! Parsing funnels into [`ClusterConfig::builder`], so a bootstrap file can
//! only ever produce a topology the engine itself would accept; everything
//! file-specific (node addresses, the workload shape) is validated here.
//! The supported grammar is the obvious subset of TOML: `[section]` headers,
//! `key = value` pairs, `#` comments, string/integer/float values and arrays
//! of strings.

use star_common::{ClusterConfig, Error, Result};
use star_workloads::{YcsbConfig, YcsbWorkload};
use std::collections::BTreeMap;
use std::path::Path;

/// A parsed bootstrap file: the engine configuration, the per-node listen
/// addresses (node id = position in the list) and the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Bootstrap {
    /// The validated cluster configuration.
    pub config: ClusterConfig,
    /// Listen address of each node; `addrs[i]` is node `i`.
    pub addrs: Vec<String>,
    /// The YCSB workload every node instantiates.
    pub workload: YcsbConfig,
}

impl Bootstrap {
    /// Parses and validates bootstrap text.
    pub fn parse(text: &str) -> Result<Bootstrap> {
        let sections = parse_toml_subset(text)?;
        for section in sections.keys() {
            if section != "cluster" && section != "workload" {
                return Err(Error::Config(format!("unknown section [{section}]")));
            }
        }
        let cluster =
            sections.get("cluster").ok_or_else(|| config_err("missing [cluster] section"))?;
        let empty = BTreeMap::new();
        let workload = sections.get("workload").unwrap_or(&empty);

        for key in cluster.keys() {
            if !["nodes", "full_replicas", "workers_per_node", "partitions", "seed"]
                .contains(&key.as_str())
            {
                return Err(Error::Config(format!("unknown [cluster] key `{key}`")));
            }
        }
        let addrs = match cluster.get("nodes") {
            Some(Value::Array(addrs)) if !addrs.is_empty() => addrs.clone(),
            Some(Value::Array(_)) => return Err(config_err("[cluster] nodes must be non-empty")),
            Some(_) => return Err(config_err("[cluster] nodes must be an array of addresses")),
            None => return Err(config_err("missing [cluster] nodes")),
        };
        for (i, addr) in addrs.iter().enumerate() {
            if addrs[..i].contains(addr) {
                return Err(Error::Config(format!("duplicate node address `{addr}`")));
            }
            if !addr.contains(':') {
                return Err(Error::Config(format!("node address `{addr}` has no port")));
            }
        }
        // The full-replica count has no safe default — it decides how many
        // copies of the whole database exist — so the file must say it.
        let full_replicas = match cluster.get("full_replicas") {
            Some(value) => value.as_usize("full_replicas")?,
            None => return Err(config_err("missing [cluster] full_replicas")),
        };

        let mut builder = ClusterConfig::builder()
            .nodes(addrs.len())
            .full_replicas(full_replicas)
            // A real network replaces the simulated latency; the twin engine
            // the parity harness runs uses the same zero so both backends
            // draw identical configurations.
            .network_latency(std::time::Duration::ZERO);
        if let Some(value) = cluster.get("workers_per_node") {
            builder = builder.workers_per_node(value.as_usize("workers_per_node")?);
        }
        if let Some(value) = cluster.get("partitions") {
            builder = builder.partitions(value.as_usize("partitions")?);
        }
        if let Some(value) = cluster.get("seed") {
            builder = builder.seed(value.as_u64("seed")?);
        }
        let config = builder.build()?;

        for key in workload.keys() {
            if !["rows_per_partition", "ops_per_transaction", "read_pct", "cross_partition_pct"]
                .contains(&key.as_str())
            {
                return Err(Error::Config(format!("unknown [workload] key `{key}`")));
            }
        }
        let mut ycsb = YcsbConfig { partitions: config.partitions, ..YcsbConfig::default() };
        if let Some(value) = workload.get("rows_per_partition") {
            ycsb.rows_per_partition = value.as_u64("rows_per_partition")?;
        }
        if let Some(value) = workload.get("ops_per_transaction") {
            ycsb.ops_per_transaction = value.as_usize("ops_per_transaction")?;
        }
        if let Some(value) = workload.get("read_pct") {
            ycsb.read_fraction = value.as_pct("read_pct")? / 100.0;
        }
        if let Some(value) = workload.get("cross_partition_pct") {
            ycsb.cross_partition_fraction = value.as_pct("cross_partition_pct")? / 100.0;
        }

        Ok(Bootstrap { config, addrs, workload: ycsb })
    }

    /// Reads and parses a bootstrap file.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Bootstrap> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            Error::Config(format!("cannot read bootstrap file {}: {e}", path.as_ref().display()))
        })?;
        Self::parse(&text)
    }

    /// Renders the bootstrap back to file text ([`parse`](Self::parse) of the
    /// output reproduces `self`).
    pub fn render(&self) -> String {
        let quoted: Vec<String> = self.addrs.iter().map(|a| format!("\"{a}\"")).collect();
        format!(
            "[cluster]\n\
             nodes = [{}]\n\
             full_replicas = {}\n\
             workers_per_node = {}\n\
             partitions = {}\n\
             seed = {}\n\
             \n\
             [workload]\n\
             rows_per_partition = {}\n\
             ops_per_transaction = {}\n\
             read_pct = {}\n\
             cross_partition_pct = {}\n",
            quoted.join(", "),
            self.config.full_replicas,
            self.config.workers_per_node,
            self.config.partitions,
            self.config.seed,
            self.workload.rows_per_partition,
            self.workload.ops_per_transaction,
            self.workload.read_fraction * 100.0,
            self.workload.cross_partition_fraction * 100.0,
        )
    }

    /// Instantiates the workload every node loads.
    pub fn ycsb(&self) -> YcsbWorkload {
        YcsbWorkload::new(self.workload.clone())
    }
}

fn config_err(message: &str) -> Error {
    Error::Config(message.to_string())
}

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Integer(u64),
    Float(f64),
    Array(Vec<String>),
}

impl Value {
    fn as_usize(&self, key: &str) -> Result<usize> {
        match self {
            Value::Integer(n) => {
                usize::try_from(*n).map_err(|_| Error::Config(format!("`{key}` out of range")))
            }
            _ => Err(Error::Config(format!("`{key}` must be an integer"))),
        }
    }

    fn as_u64(&self, key: &str) -> Result<u64> {
        match self {
            Value::Integer(n) => Ok(*n),
            _ => Err(Error::Config(format!("`{key}` must be an integer"))),
        }
    }

    fn as_pct(&self, key: &str) -> Result<f64> {
        let pct = match self {
            Value::Integer(n) => *n as f64,
            Value::Float(f) => *f,
            _ => return Err(Error::Config(format!("`{key}` must be a number"))),
        };
        if !(0.0..=100.0).contains(&pct) {
            return Err(Error::Config(format!("`{key}` must be between 0 and 100")));
        }
        Ok(pct)
    }
}

type Sections = BTreeMap<String, BTreeMap<String, Value>>;

fn parse_toml_subset(text: &str) -> Result<Sections> {
    let mut sections: Sections = BTreeMap::new();
    let mut current: Option<String> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw_line.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw_line.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|rest| rest.strip_suffix(']')) {
            let name = name.trim().to_string();
            if sections.contains_key(&name) {
                return Err(Error::Config(format!("line {line_no}: duplicate section [{name}]")));
            }
            sections.insert(name.clone(), BTreeMap::new());
            current = Some(name);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(Error::Config(format!("line {line_no}: expected `key = value`")));
        };
        let Some(section) = &current else {
            return Err(Error::Config(format!("line {line_no}: key before any [section]")));
        };
        let key = key.trim().to_string();
        let value = parse_value(value.trim(), line_no)?;
        let entries = sections.entry(section.clone()).or_default();
        if entries.insert(key.clone(), value).is_some() {
            return Err(Error::Config(format!("line {line_no}: duplicate key `{key}`")));
        }
    }
    Ok(sections)
}

fn parse_value(text: &str, line_no: usize) -> Result<Value> {
    if let Some(inner) = text.strip_prefix('[').and_then(|rest| rest.strip_suffix(']')) {
        let inner = inner.trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            for item in inner.split(',') {
                let item = item.trim();
                let Some(unquoted) = item.strip_prefix('"').and_then(|rest| rest.strip_suffix('"'))
                else {
                    return Err(Error::Config(format!(
                        "line {line_no}: array items must be quoted strings"
                    )));
                };
                items.push(unquoted.to_string());
            }
        }
        return Ok(Value::Array(items));
    }
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Value::Integer(n));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(Error::Config(format!("line {line_no}: cannot parse value `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &str = r#"
        # three localhost nodes
        [cluster]
        nodes = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"]
        full_replicas = 1
        workers_per_node = 1
        partitions = 6
        seed = 42

        [workload]
        rows_per_partition = 200
        ops_per_transaction = 4
        read_pct = 90.0
        cross_partition_pct = 10.0
    "#;

    #[test]
    fn valid_file_parses() {
        let boot = Bootstrap::parse(VALID).unwrap();
        assert_eq!(boot.addrs.len(), 3);
        assert_eq!(boot.config.num_nodes, 3);
        assert_eq!(boot.config.full_replicas, 1);
        assert_eq!(boot.config.partitions, 6);
        assert_eq!(boot.config.seed, 42);
        assert_eq!(boot.workload.rows_per_partition, 200);
        assert!((boot.workload.cross_partition_fraction - 0.10).abs() < 1e-9);
    }

    #[test]
    fn render_round_trips() {
        let boot = Bootstrap::parse(VALID).unwrap();
        assert_eq!(Bootstrap::parse(&boot.render()).unwrap(), boot);
    }
}
