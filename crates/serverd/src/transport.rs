//! The real-network twin of the simulated endpoint: a TCP mesh.
//!
//! [`TcpMesh`] implements the same [`Transport`] seam the deterministic
//! in-memory [`Endpoint`](star_net::Endpoint) does, so the shared
//! per-transaction execution paths in `star_core::exec` replicate over real
//! sockets without a single engine-side branch. One lazily-connected,
//! mutex-guarded stream exists per peer; batches on one link are therefore
//! FIFO, which is the only ordering the fence protocol needs (operation
//! entries of one partition all travel one link; value entries commute under
//! the Thomas write rule).

use crate::node::CONNECT_TIMEOUT;
use star_core::messages::ReplicationBatch;
use star_net::{SendError, Transport};
use star_proto::{replication_frame_encoded, write_message};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// TCP connections from one node to every peer, plus cumulative per-peer
/// batch counters — the sent side of the fence's "wait until everything a
/// phase shipped has arrived" barrier.
pub struct TcpMesh {
    node: usize,
    addrs: Vec<String>,
    links: Vec<Mutex<Option<TcpStream>>>,
    sent: Vec<AtomicU64>,
    connect_timeout: Duration,
}

impl std::fmt::Debug for TcpMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpMesh").field("node", &self.node).field("peers", &self.addrs).finish()
    }
}

impl TcpMesh {
    /// A mesh for `node`, whose peers listen on `addrs` (`addrs[i]` = node
    /// `i`). No connections are opened until the first send to each peer.
    pub fn new(node: usize, addrs: Vec<String>) -> Self {
        let links = addrs.iter().map(|_| Mutex::new(None)).collect();
        let sent = addrs.iter().map(|_| AtomicU64::new(0)).collect();
        TcpMesh { node, addrs, links, sent, connect_timeout: CONNECT_TIMEOUT }
    }

    /// Overrides how long (re)connects keep retrying before the mesh gives
    /// up with a typed [`SendError::Disconnected`]. Tests exercising the
    /// retry-exhausted path use a short timeout instead of the boot-friendly
    /// default.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Cumulative replication batches sent to each peer since construction.
    /// Reported in `PhaseDone` so the coordinator can tell each receiver how
    /// many batches its next fence must wait for.
    pub fn sent_counts(&self) -> Vec<u64> {
        self.sent.iter().map(|c| c.load(Ordering::SeqCst)).collect()
    }

    /// Connects to `to`, retrying while the peer is still booting.
    fn connect(&self, to: usize) -> Result<TcpStream, SendError> {
        let addr = self.addrs.get(to).ok_or(SendError::NoSuchNode(to))?;
        let deadline = Instant::now() + self.connect_timeout;
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(stream);
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(_) => return Err(SendError::Disconnected(to)),
            }
        }
    }
}

impl Transport<ReplicationBatch> for TcpMesh {
    fn node(&self) -> usize {
        self.node
    }

    fn num_nodes(&self) -> usize {
        self.addrs.len()
    }

    fn send(&self, to: usize, payload: ReplicationBatch) -> Result<(), SendError> {
        if to >= self.addrs.len() {
            return Err(SendError::NoSuchNode(to));
        }
        // The entries are already in their canonical encoded form; the frame
        // is a concatenation, not a re-serialization.
        let frame = replication_frame_encoded(payload.from_node, payload.epoch, &payload.entries);
        let mut link_guard = match self.links[to].lock() {
            Ok(guard) => guard,
            Err(_) => return Err(SendError::Disconnected(to)),
        };
        if link_guard.is_none() {
            *link_guard = Some(self.connect(to)?);
        }
        let Some(stream) = link_guard.as_mut() else {
            return Err(SendError::Disconnected(to));
        };
        if write_message(stream, &frame).is_err() {
            // One reconnect attempt: the peer may have restarted.
            *link_guard = Some(self.connect(to)?);
            let Some(stream) = link_guard.as_mut() else {
                return Err(SendError::Disconnected(to));
            };
            write_message(stream, &frame).map_err(|_| SendError::Disconnected(to))?;
        }
        self.sent[to].fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}
