//! One node of the TCP deployment.
//!
//! A [`NodeServer`] is the wire-facing shell around exactly the machinery the
//! simulated engine uses: the same [`Database`] replica layout, the same
//! seeded worker states, the same per-transaction execution paths from
//! `star_core::exec`. The only thing TCP-specific is the shell itself — a
//! listener, one thread per connection, an inbox of replication batches and
//! the fence barrier that drains it.
//!
//! ## The connection state machine
//!
//! Every connection speaks frames. Three frame kinds drive a connection:
//!
//! * `Hello` → the node replies `HelloAck` (role is informational);
//! * `Replication` → the batch is appended to the inbox and the per-sender
//!   arrival counter bumps; no response (one-way stream);
//! * `Request` → handled, and a `Response` with the same correlation id is
//!   written back. `Run` turns the receiving node into the coordinator for a
//!   whole clustered run (see [`crate::coordinator`]).
//!
//! ## The fence barrier
//!
//! A `Fence { epoch, expected, failed }` request carries, for every sender
//! `s`, the cumulative number of batches `s` has shipped to this node, plus
//! the coordinator's current failure picture. The fence waits until the
//! arrival counters catch up, and then mirrors the simulated engine's
//! fence exactly: a *newly* failed node makes it revert the in-flight epoch
//! (the crash discarded it cluster-wide) and drop that epoch's queued
//! batches, the deterministic master election re-runs (lowest-id healthy
//! full replica), surviving batches are applied in arrival order (disjoint
//! partitions in the partitioned phase and the Thomas write rule in the
//! single-master phase make cross-link ordering irrelevant), the epoch's
//! history is finalized as committed or reverted, and the epoch advances.
//!
//! ## Failover and restart
//!
//! `RunPhase` carries per-executor transaction-attempt baselines: a node
//! taking over a partition (or a restarted master) fast-forwards the
//! worker's seeded RNG to the baseline, so the transaction stream continues
//! exactly where the previous executor left it — the wire form of the
//! engine's engine-global worker state. The supervisor drives recovery with
//! `FetchPartition` / `InstallRecords` (a Thomas-rule catch-up copy between
//! replicas) and `Rejoin` (epoch, failure set, election log and replication
//! counter rebase for a freshly restarted process).

use crate::bootstrap::Bootstrap;
use crate::transport::TcpMesh;
use bytes::{BufMut, BytesMut};
use star_common::stats::RunCounters;
use star_common::Tid;
use star_common::{ClusterConfig, Epoch, NodeId, PartitionId, Result};
use star_core::exec::{
    run_one_master_txn, run_one_partitioned_txn, MasterWorkerState, PartitionWorkerState,
};
use star_core::history::HistoryRecorder;
use star_core::messages::ReplicationBatch;
use star_core::workload::Workload;
use star_core::MasterElection;
use star_proto::{
    write_message, AdminQuery, FrameBuffer, Request, Response, WireElection, WireMessage,
    WirePhase, WireRecord, WireStatus, WireTxn,
};
use star_replication::encode_row;
use star_storage::{Database, DatabaseBuilder};
use std::collections::BTreeMap;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a peer connection keeps retrying while the target node boots.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a fence waits for in-flight replication before giving up.
const FENCE_TIMEOUT: Duration = Duration::from_secs(60);

/// Per-worker execution state behind one mutex: the stepped phases are
/// single-threaded per node, exactly like the engine's stepped driver.
struct EngineState {
    epoch: Epoch,
    last_committed: Epoch,
    partition_workers: BTreeMap<PartitionId, PartitionWorkerState>,
    master_workers: Vec<MasterWorkerState>,
    /// The node's view of which peers are failed, as told by fences.
    failed: Vec<bool>,
    /// Cumulative transaction attempts this node's partition workers have
    /// actually executed (== RNG generations consumed). Compared against the
    /// supervisor's cluster-wide baselines to fast-forward on takeover.
    partition_attempts: BTreeMap<PartitionId, u64>,
    /// Same, per master worker.
    master_attempts: Vec<u64>,
}

/// Shared state of one node, owned by the listener and every connection
/// thread.
pub(crate) struct NodeInner {
    pub(crate) node: NodeId,
    pub(crate) config: ClusterConfig,
    pub(crate) addrs: Vec<String>,
    pub(crate) db: Arc<Database>,
    workload: Arc<dyn Workload>,
    mesh: TcpMesh,
    counters: RunCounters,
    pub(crate) history: Arc<HistoryRecorder>,
    engine: Mutex<EngineState>,
    inbox: Mutex<Vec<ReplicationBatch>>,
    recv_counts: Vec<AtomicU64>,
    elections: Mutex<Vec<MasterElection>>,
    shutdown: AtomicBool,
}

/// A running node: its listener thread plus shared state.
pub struct NodeServer {
    inner: Arc<NodeInner>,
    listener_thread: Option<std::thread::JoinHandle<()>>,
    addr: String,
}

impl std::fmt::Debug for NodeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeServer")
            .field("node", &self.inner.node)
            .field("addr", &self.addr)
            .finish()
    }
}

/// Builds node `id`'s database replica exactly as the simulated cluster
/// does: full replicas hold everything, partial replicas hold the partitions
/// they are primary or secondary for, and every held partition is loaded
/// from the workload's deterministic initial state.
fn build_replica(config: &ClusterConfig, workload: &dyn Workload, id: NodeId) -> Arc<Database> {
    let mut builder = DatabaseBuilder::new(config.partitions);
    for spec in workload.catalog() {
        builder = builder.table(spec);
    }
    if !config.is_full_replica(id) {
        let held: Vec<PartitionId> = (0..config.partitions)
            .filter(|p| {
                config.partition_primary(*p) == id || config.partition_secondary(*p) == Some(id)
            })
            .collect();
        builder = builder.holding(held);
    }
    let db = Arc::new(builder.build());
    for p in db.held_partitions() {
        workload.load_partition(&db, p);
    }
    db
}

/// A commutative digest of a replica: per-record FNV-1a over the canonical
/// encoding of `(table, partition, key, tid, row)`, combined with wrapping
/// addition so iteration order does not matter. Two replicas holding the
/// same partitions digest equal iff they hold identical versions.
pub fn replica_digest(db: &Database) -> (u64, u64) {
    let mut record_count = 0u64;
    let mut acc = 0u64;
    db.for_each_record(|table, partition, key, record| {
        let result = record.read();
        let mut buf = BytesMut::new();
        buf.put_u32_le(table);
        buf.put_u64_le(partition as u64);
        buf.put_u64_le(key);
        buf.put_u64_le(result.tid.raw());
        encode_row(&result.row, &mut buf);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &byte in buf.as_slice() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        acc = acc.wrapping_add(hash);
        record_count += 1;
    });
    (record_count, acc)
}

impl NodeServer {
    /// Binds node `id`'s configured address and starts serving.
    pub fn start(boot: &Bootstrap, id: NodeId) -> Result<NodeServer> {
        let addr = boot
            .addrs
            .get(id)
            .ok_or_else(|| star_common::Error::Config(format!("no address for node {id}")))?;
        let listener = TcpListener::bind(addr.as_str())
            .map_err(|e| star_common::Error::Config(format!("cannot bind {addr}: {e}")))?;
        Self::start_on(listener, boot, id)
    }

    /// Starts serving on an already-bound listener (tests bind ephemeral
    /// ports first, then pass the real addresses in via `boot.addrs`).
    pub fn start_on(listener: TcpListener, boot: &Bootstrap, id: NodeId) -> Result<NodeServer> {
        Self::start_with(
            listener,
            boot.config.clone(),
            boot.addrs.clone(),
            Arc::new(boot.ycsb()),
            id,
        )
    }

    /// Starts serving with an explicit config, address book and workload —
    /// the general constructor the wire-chaos harness uses to replay corpus
    /// plans whose cluster shapes the bootstrap grammar cannot express.
    pub fn start_with(
        listener: TcpListener,
        config: ClusterConfig,
        addrs: Vec<String>,
        workload: Arc<dyn Workload>,
        id: NodeId,
    ) -> Result<NodeServer> {
        config.validate().map_err(star_common::Error::Config)?;
        let db = build_replica(&config, workload.as_ref(), id);
        let initial_master = (config.full_replicas > 0).then(|| config.master_node());
        let fallback_addr = addrs.get(id).cloned().unwrap_or_default();
        let inner = Arc::new(NodeInner {
            node: id,
            config: config.clone(),
            addrs: addrs.clone(),
            db,
            workload,
            mesh: TcpMesh::new(id, addrs),
            counters: RunCounters::new(),
            history: Arc::new(HistoryRecorder::new()),
            engine: Mutex::new(EngineState {
                epoch: 1,
                last_committed: 0,
                partition_workers: BTreeMap::new(),
                master_workers: (0..config.workers_per_node)
                    .map(|w| MasterWorkerState::new(&config, w))
                    .collect(),
                failed: vec![false; config.num_nodes],
                partition_attempts: BTreeMap::new(),
                master_attempts: vec![0; config.workers_per_node],
            }),
            inbox: Mutex::new(Vec::new()),
            recv_counts: (0..config.num_nodes).map(|_| AtomicU64::new(0)).collect(),
            elections: Mutex::new(vec![MasterElection {
                epoch: 0,
                master: initial_master,
                generation: 0,
            }]),
            shutdown: AtomicBool::new(false),
        });
        let addr = listener.local_addr().map(|a| a.to_string()).unwrap_or(fallback_addr);
        listener
            .set_nonblocking(true)
            .map_err(|e| star_common::Error::Config(format!("listener setup: {e}")))?;
        let accept_inner = Arc::clone(&inner);
        let listener_thread = std::thread::Builder::new()
            .name(format!("star-serverd-{id}"))
            .spawn(move || accept_loop(listener, accept_inner))
            .map_err(|e| star_common::Error::Config(format!("spawn listener: {e}")))?;
        Ok(NodeServer { inner, listener_thread: Some(listener_thread), addr })
    }

    /// The address the node is actually listening on.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Requests shutdown; the listener and connection threads exit within
    /// one poll interval.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested (over the wire or locally).
    pub fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the node has been shut down.
    pub fn wait(&self) {
        while !self.is_shutdown() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for NodeServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.listener_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<NodeInner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let conn_inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name(format!("star-serverd-{}-conn", inner.node))
                    .spawn(move || connection_loop(stream, conn_inner));
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Reads one frame from `stream`, buffering partial data in `buf` across
/// read timeouts so a timeout can never split a frame.
fn poll_frame(stream: &mut TcpStream, buf: &mut FrameBuffer) -> io::Result<WireMessage> {
    loop {
        if let Some(message) =
            buf.next_message().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        {
            return Ok(message);
        }
        let mut chunk = [0u8; 64 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => buf.push(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
}

fn connection_loop(mut stream: TcpStream, inner: Arc<NodeInner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = FrameBuffer::new();
    while !inner.shutdown.load(Ordering::SeqCst) {
        let message = match poll_frame(&mut stream, &mut buf) {
            Ok(message) => message,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        match message {
            WireMessage::Hello { .. } => {
                let ack = WireMessage::HelloAck {
                    node: inner.node as u32,
                    num_nodes: inner.config.num_nodes as u32,
                };
                if write_message(&mut stream, &ack).is_err() {
                    break;
                }
            }
            WireMessage::HelloAck { .. } | WireMessage::Response { .. } => {
                // A server never expects these; drop the connection rather
                // than guess what the peer is.
                break;
            }
            WireMessage::Replication { from, epoch, entries } => {
                // Split the received block into zero-copy per-entry slices;
                // decoding a payload happens once, at fence apply time.
                let Ok(split) = star_replication::split_entry_block(&entries) else { break };
                let from = from as usize;
                if from >= inner.recv_counts.len() {
                    break;
                }
                {
                    let mut inbox_guard =
                        inner.inbox.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                    inbox_guard.push(ReplicationBatch { from_node: from, epoch, entries: split });
                }
                inner.recv_counts[from].fetch_add(1, Ordering::SeqCst);
            }
            WireMessage::Request { id, body } => {
                let response = handle_request(&inner, body);
                let frame = WireMessage::Response { id, body: response };
                if write_message(&mut stream, &frame).is_err() {
                    break;
                }
            }
        }
    }
}

fn handle_request(inner: &Arc<NodeInner>, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Get { table, partition, key } => handle_get(inner, table, partition as usize, key),
        Request::Run { iterations, partitioned_txns, single_master_txns } => {
            if inner.node != inner.config.master_node() {
                return Response::Error(format!(
                    "node {} is not the coordinator (node {})",
                    inner.node,
                    inner.config.master_node()
                ));
            }
            match crate::coordinator::run_cluster(
                inner,
                iterations,
                partitioned_txns,
                single_master_txns,
            ) {
                Ok((committed, epochs)) => Response::RunDone { committed, epochs },
                Err(message) => Response::Error(message),
            }
        }
        Request::RunPhase { phase, epoch, txns, baselines, failed } => {
            handle_run_phase(inner, phase, epoch, txns, &baselines, &failed)
        }
        Request::Fence { epoch, expected, failed } => {
            handle_fence(inner, epoch, &expected, &failed)
        }
        Request::FetchPartition { partition } => {
            handle_fetch_partition(inner, partition as PartitionId)
        }
        Request::InstallRecords { records } => handle_install_records(inner, records),
        Request::Rejoin { epoch, last_committed, failed, elections, recv_base } => {
            handle_rejoin(inner, epoch, last_committed, &failed, elections, &recv_base)
        }
        Request::Admin(query) => handle_admin(inner, query),
        Request::Shutdown => {
            inner.shutdown.store(true, Ordering::SeqCst);
            Response::Ok
        }
    }
}

fn handle_get(inner: &NodeInner, table: u32, partition: PartitionId, key: u64) -> Response {
    if partition >= inner.config.partitions {
        return Response::Error(format!("no such partition {partition}"));
    }
    if !inner.db.holds(partition) {
        return Response::Error(format!("node {} does not hold partition {partition}", inner.node));
    }
    match inner.db.get(table, partition, key) {
        Ok(record) => {
            let result = record.read();
            Response::Record { tid: result.tid.raw(), row: Some(result.row) }
        }
        Err(_) => Response::Record { tid: 0, row: None },
    }
}

/// Expands the wire's failed-node-id list into per-node flags.
fn failed_flags(num_nodes: usize, failed_ids: &[u32]) -> Vec<bool> {
    let mut flags = vec![false; num_nodes];
    for &id in failed_ids {
        if let Some(flag) = flags.get_mut(id as usize) {
            *flag = true;
        }
    }
    flags
}

/// The engine's failover routing: the configured primary while it is
/// healthy, otherwise the lowest-id healthy replica holding the partition.
fn effective_primary(
    config: &ClusterConfig,
    failed: &[bool],
    partition: PartitionId,
) -> Option<NodeId> {
    let primary = config.partition_primary(partition);
    if failed.get(primary) == Some(&false) {
        return Some(primary);
    }
    (0..config.num_nodes)
        .find(|&n| failed.get(n) == Some(&false) && config.node_stores_partition(n, partition))
}

fn handle_run_phase(
    inner: &NodeInner,
    phase: WirePhase,
    epoch: Epoch,
    txns: u64,
    baselines: &[u64],
    failed_ids: &[u32],
) -> Response {
    let mut engine_guard = inner.engine.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if engine_guard.epoch != epoch {
        return Response::Error(format!(
            "phase for epoch {epoch} but node {} is at epoch {}",
            inner.node, engine_guard.epoch
        ));
    }
    let failed = failed_flags(inner.config.num_nodes, failed_ids);
    let committed = match phase {
        WirePhase::Partitioned => {
            run_partitioned(inner, &mut engine_guard, epoch, txns, baselines, &failed)
        }
        WirePhase::SingleMaster => {
            run_single_master(inner, &mut engine_guard, epoch, txns, baselines, &failed)
        }
    };
    Response::PhaseDone { committed, sent: inner.mesh.sent_counts() }
}

/// The stepped partitioned phase, restricted to the partitions this node is
/// the *effective* primary for — the union across healthy nodes is exactly
/// the engine's stepped partitioned phase, partition by partition, same
/// seeds, same order. On takeover the worker's RNG is fast-forwarded to the
/// supervisor-supplied cluster-wide attempt baseline, so the stream
/// continues where the crashed primary left it.
fn run_partitioned(
    inner: &NodeInner,
    engine_state: &mut EngineState,
    epoch: Epoch,
    txns: u64,
    baselines: &[u64],
    failed: &[bool],
) -> u64 {
    let config = &inner.config;
    let EngineState { partition_workers, partition_attempts, .. } = engine_state;
    let mut committed = 0u64;
    for partition in 0..config.partitions {
        if effective_primary(config, failed, partition) != Some(inner.node) {
            continue;
        }
        let targets: Vec<NodeId> = (0..config.num_nodes)
            .filter(|&n| {
                n != inner.node && !failed[n] && config.node_stores_partition(n, partition)
            })
            .collect();
        let worker = partition_workers
            .entry(partition)
            .or_insert_with(|| PartitionWorkerState::new(config, partition));
        let attempts = partition_attempts.entry(partition).or_insert(0);
        if let Some(&baseline) = baselines.get(partition) {
            if *attempts < baseline {
                worker.fast_forward(inner.workload.as_ref(), partition, baseline - *attempts);
                *attempts = baseline;
            }
        }
        for _ in 0..txns {
            if run_one_partitioned_txn(
                partition,
                inner.node,
                &targets,
                &inner.db,
                &inner.mesh,
                inner.workload.as_ref(),
                &inner.counters,
                None,
                Some(&inner.history),
                epoch,
                config.replication_strategy,
                worker,
                None,
            ) {
                committed += 1;
            }
        }
        *attempts += txns;
    }
    committed
}

/// The stepped single-master phase; a no-op on every node but the elected
/// master. A newly elected (or restarted) master fast-forwards each worker
/// to its baseline before executing, continuing the dead master's streams.
fn run_single_master(
    inner: &NodeInner,
    engine_state: &mut EngineState,
    epoch: Epoch,
    txns: u64,
    baselines: &[u64],
    failed: &[bool],
) -> u64 {
    let elected = {
        let elections_guard =
            inner.elections.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        elections_guard.last().and_then(|e| e.master)
    };
    if elected != Some(inner.node) {
        return 0;
    }
    let config = &inner.config;
    let EngineState { master_workers, master_attempts, .. } = engine_state;
    let healthy: Vec<NodeId> =
        (0..config.num_nodes).filter(|&n| n != inner.node && !failed[n]).collect();
    let mut committed = 0u64;
    for (worker_id, worker) in master_workers.iter_mut().enumerate() {
        let attempts = &mut master_attempts[worker_id];
        if let Some(&baseline) = baselines.get(worker_id) {
            if *attempts < baseline {
                worker.fast_forward(
                    inner.workload.as_ref(),
                    worker_id,
                    config.partitions,
                    baseline - *attempts,
                );
                *attempts = baseline;
            }
        }
        for _ in 0..txns {
            if run_one_master_txn(
                worker_id,
                inner.node,
                &healthy,
                config,
                &inner.db,
                &inner.mesh,
                inner.workload.as_ref(),
                &inner.counters,
                None,
                Some(&inner.history),
                epoch,
                worker,
                None,
            ) {
                committed += 1;
            }
        }
        *attempts += txns;
    }
    committed
}

fn handle_fence(inner: &NodeInner, epoch: Epoch, expected: &[u64], failed_ids: &[u32]) -> Response {
    if expected.len() != inner.config.num_nodes {
        return Response::Error(format!(
            "fence expects {} sender counts, got {}",
            inner.config.num_nodes,
            expected.len()
        ));
    }
    // Barrier: wait until everything the senders shipped before the fence
    // has arrived. Counters are cumulative, so a stale fence can never block
    // on traffic that already passed.
    let deadline = Instant::now() + FENCE_TIMEOUT;
    loop {
        let caught_up = (0..inner.config.num_nodes)
            .all(|s| s == inner.node || inner.recv_counts[s].load(Ordering::SeqCst) >= expected[s]);
        if caught_up {
            break;
        }
        if Instant::now() >= deadline {
            return Response::Error(format!(
                "fence for epoch {epoch} timed out waiting for replication"
            ));
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut engine_guard = inner.engine.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    if engine_guard.epoch != epoch {
        return Response::Error(format!(
            "fence for epoch {epoch} but node {} is at epoch {}",
            inner.node, engine_guard.epoch
        ));
    }
    let failed = failed_flags(inner.config.num_nodes, failed_ids);
    // A node that newly appears in the failure picture crashed inside this
    // epoch: the cluster discards the in-flight epoch, exactly like the
    // engine's replication fence.
    let reverting = (0..inner.config.num_nodes).any(|n| failed[n] && !engine_guard.failed[n]);
    if reverting {
        inner.db.revert_to_epoch(engine_guard.last_committed);
    }
    engine_guard.failed = failed.clone();

    // Deterministic master election: lowest-id healthy full replica wins; a
    // new log entry appears only when the winner actually changes.
    {
        let winner = (0..inner.config.full_replicas).find(|&n| !failed[n]);
        let mut elections_guard =
            inner.elections.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let (last_master, last_generation) = match elections_guard.last() {
            Some(e) => (e.master, e.generation),
            None => (None, 0),
        };
        if winner != last_master {
            elections_guard.push(MasterElection {
                epoch,
                master: winner,
                generation: last_generation + 1,
            });
        }
    }

    let batches = {
        let mut inbox_guard = inner.inbox.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        std::mem::take(&mut *inbox_guard)
    };
    let mut applied = 0u64;
    for batch in batches {
        // Skip traffic from failed senders, and — when reverting — anything
        // shipped inside the epoch being discarded.
        if failed[batch.from_node] {
            continue;
        }
        if reverting && batch.epoch > engine_guard.last_committed {
            continue;
        }
        for entry in batch.entries {
            if inner.db.holds(entry.partition()) {
                let _ = entry.apply(&inner.db);
                applied += 1;
            }
        }
    }
    inner.history.finalize_epoch(epoch, !reverting);
    // The engine advances `last_committed` even past a reverted epoch — the
    // revert already discarded its records, and the next epoch builds on the
    // surviving state. Matched here so digests and rebases line up.
    engine_guard.last_committed = epoch;
    engine_guard.epoch = epoch + 1;
    Response::FenceDone { epoch, applied }
}

/// Serves one held partition's records for a supervisor-mediated catch-up
/// copy — the wire form of the engine's memory-to-memory recovery source.
fn handle_fetch_partition(inner: &NodeInner, partition: PartitionId) -> Response {
    if partition >= inner.config.partitions {
        return Response::Error(format!("no such partition {partition}"));
    }
    if !inner.db.holds(partition) {
        return Response::Error(format!("node {} does not hold partition {partition}", inner.node));
    }
    let mut records = Vec::new();
    inner.db.for_each_record(|table, p, key, record| {
        if p != partition {
            return;
        }
        let result = record.read();
        records.push(WireRecord {
            table,
            partition: p as u32,
            key,
            tid: result.tid.raw(),
            row: result.row,
        });
    });
    Response::Records(records)
}

/// Installs copied records under the Thomas write rule — the recovery
/// target's half of the catch-up copy. A freshly restarted process holds the
/// workload's initial state, so a full copy from a healthy peer lands it in
/// exactly the state the engine's revert-then-copy recovery produces.
fn handle_install_records(inner: &NodeInner, records: Vec<WireRecord>) -> Response {
    let mut installed = 0u64;
    for record in records {
        let partition = record.partition as PartitionId;
        if partition >= inner.config.partitions || !inner.db.holds(partition) {
            return Response::Error(format!(
                "node {} cannot install into partition {partition}",
                inner.node
            ));
        }
        let fresher = inner
            .db
            .apply_value_write(
                record.table,
                partition,
                record.key,
                record.row,
                Tid::from_raw(record.tid),
            )
            .unwrap_or(false);
        if fresher {
            installed += 1;
        }
    }
    Response::InstallDone { installed }
}

/// Rebases a freshly restarted node onto the cluster's current epoch,
/// failure picture, election log and replication counters, completing a
/// supervisor-driven restart.
fn handle_rejoin(
    inner: &NodeInner,
    epoch: Epoch,
    last_committed: Epoch,
    failed_ids: &[u32],
    elections: Vec<WireElection>,
    recv_base: &[u64],
) -> Response {
    if recv_base.len() != inner.config.num_nodes {
        return Response::Error(format!(
            "rejoin expects {} receive counters, got {}",
            inner.config.num_nodes,
            recv_base.len()
        ));
    }
    if elections.is_empty() {
        return Response::Error("rejoin needs a non-empty election log".to_string());
    }
    {
        let mut engine_guard = inner.engine.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        engine_guard.epoch = epoch;
        engine_guard.last_committed = last_committed;
        engine_guard.failed = failed_flags(inner.config.num_nodes, failed_ids);
    }
    {
        let mut elections_guard =
            inner.elections.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        *elections_guard = elections.into_iter().map(WireElection::to_election).collect();
    }
    for (sender, &count) in recv_base.iter().enumerate() {
        inner.recv_counts[sender].store(count, Ordering::SeqCst);
    }
    let mut inbox_guard = inner.inbox.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    inbox_guard.clear();
    Response::Ok
}

fn handle_admin(inner: &NodeInner, query: AdminQuery) -> Response {
    match query {
        AdminQuery::Status => {
            let (epoch, last_committed) = {
                let engine_guard =
                    inner.engine.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                (engine_guard.epoch, engine_guard.last_committed)
            };
            let (elected, generation) = {
                let elections_guard =
                    inner.elections.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                match elections_guard.last() {
                    Some(e) => (e.master, e.generation),
                    None => (None, 0),
                }
            };
            Response::Status(WireStatus {
                node: inner.node as u32,
                epoch,
                last_committed,
                master: elected.map(|m| m as i64).unwrap_or(-1),
                generation,
                committed: inner.counters.snapshot().committed,
                full_replica: inner.db.is_full_replica(),
            })
        }
        AdminQuery::Elections => {
            let elections_guard =
                inner.elections.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            Response::Elections(elections_guard.iter().map(WireElection::from_election).collect())
        }
        AdminQuery::History => {
            let committed = inner.history.committed();
            Response::History(committed.iter().map(WireTxn::from_committed).collect())
        }
        AdminQuery::ReplicaDigest => {
            let (records, digest) = replica_digest(&inner.db);
            Response::Digest { records, digest }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::Bootstrap;
    use star_proto::{read_message, Role};

    fn test_bootstrap(nodes: usize) -> (Vec<TcpListener>, Bootstrap) {
        let listeners: Vec<TcpListener> =
            (0..nodes).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
        let addrs: Vec<String> =
            listeners.iter().map(|l| l.local_addr().expect("addr").to_string()).collect();
        let text = format!(
            "[cluster]\nnodes = [{}]\nfull_replicas = 1\nworkers_per_node = 1\n\
             partitions = 4\nseed = 9\n\n[workload]\nrows_per_partition = 32\n\
             ops_per_transaction = 4\nread_pct = 80.0\ncross_partition_pct = 10.0\n",
            addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(", ")
        );
        (listeners, Bootstrap::parse(&text).expect("bootstrap parses"))
    }

    fn request(stream: &mut TcpStream, id: u64, body: Request) -> Response {
        write_message(stream, &WireMessage::Request { id, body }).expect("write");
        match read_message(stream).expect("read") {
            WireMessage::Response { id: got, body } => {
                assert_eq!(got, id);
                body
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn ping_get_and_shutdown_over_tcp() {
        let (mut listeners, boot) = test_bootstrap(1);
        let server = NodeServer::start_on(listeners.remove(0), &boot, 0).expect("start");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

        write_message(&mut stream, &WireMessage::Hello { role: Role::Client, node: 0 })
            .expect("hello");
        match read_message(&mut stream).expect("ack") {
            WireMessage::HelloAck { node, num_nodes } => assert_eq!((node, num_nodes), (0, 1)),
            other => panic!("unexpected {other:?}"),
        }

        assert_eq!(request(&mut stream, 1, Request::Ping), Response::Pong);

        // Row 0 of partition 0 was loaded by the workload.
        let key = star_workloads::ycsb::ycsb_key(0, 0);
        match request(&mut stream, 2, Request::Get { table: 0, partition: 0, key }) {
            Response::Record { row: Some(_), .. } => {}
            other => panic!("expected a loaded row, got {other:?}"),
        }
        // A key that was never loaded is absent, not an error.
        match request(&mut stream, 3, Request::Get { table: 0, partition: 0, key: u64::MAX }) {
            Response::Record { tid: 0, row: None } => {}
            other => panic!("expected absent row, got {other:?}"),
        }

        assert_eq!(request(&mut stream, 4, Request::Shutdown), Response::Ok);
        server.wait();
    }

    #[test]
    fn status_reports_initial_election() {
        let (mut listeners, boot) = test_bootstrap(1);
        let server = NodeServer::start_on(listeners.remove(0), &boot, 0).expect("start");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        match request(&mut stream, 1, Request::Admin(AdminQuery::Status)) {
            Response::Status(status) => {
                assert_eq!(status.node, 0);
                assert_eq!(status.epoch, 1);
                assert_eq!(status.last_committed, 0);
                assert_eq!(status.master, 0);
                assert_eq!(status.generation, 0);
                assert!(status.full_replica);
            }
            other => panic!("unexpected {other:?}"),
        }
        match request(&mut stream, 2, Request::Admin(AdminQuery::Elections)) {
            Response::Elections(log) => {
                assert_eq!(log, vec![WireElection { epoch: 0, master: 0, generation: 0 }]);
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn replica_digest_is_iteration_order_independent_and_state_sensitive() {
        let (_listeners, boot) = test_bootstrap(1);
        let workload: Arc<dyn Workload> = Arc::new(boot.ycsb());
        let a = build_replica(&boot.config, workload.as_ref(), 0);
        let b = build_replica(&boot.config, workload.as_ref(), 0);
        assert_eq!(replica_digest(&a), replica_digest(&b), "identical replicas digest equal");
        use star_common::{row::row, FieldValue, Tid};
        b.apply_value_write(
            0,
            0,
            star_workloads::ycsb::ycsb_key(0, 0),
            row([FieldValue::U64(1)]),
            Tid::new(1, 1),
        )
        .expect("write");
        assert_ne!(replica_digest(&a).1, replica_digest(&b).1, "a divergent row changes it");
    }
}
