//! The clustered run loop, executed by the node that receives a `Run`.
//!
//! The coordinator drives the deterministic stepped schedule the simulated
//! engine's `run_iteration_stepped` performs, over control connections to
//! every node (including itself, through its own listener — one uniform
//! path):
//!
//! 1. `RunPhase(Partitioned, e)` to every node in parallel; each runs its
//!    own partitions' seeded transaction streams and reports its cumulative
//!    per-destination replication batch counts.
//! 2. `Fence(e, expected)` to every node: `expected[s]` for receiver `r` is
//!    the cumulative count sender `s` reported having shipped to `r`, so the
//!    fence blocks exactly until the phase's replication has landed.
//! 3. `RunPhase(SingleMaster, e+1)` to the elected master only.
//! 4. `Fence(e+1, …)` to every node.
//!
//! Two fences per iteration, always — including when the single-master
//! phase is empty — so epoch numbers stay aligned with the simulation twin.

use crate::node::{NodeInner, CONNECT_TIMEOUT};
use star_proto::{read_message, write_message, Request, Response, Role, WireMessage, WirePhase};
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A synchronous control connection to one node.
pub(crate) struct CtrlConn {
    stream: TcpStream,
    next_id: u64,
}

impl CtrlConn {
    /// Connects and handshakes, retrying while the peer boots.
    pub(crate) fn connect(addr: &str, from_node: usize) -> io::Result<CtrlConn> {
        let deadline = Instant::now() + CONNECT_TIMEOUT;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let mut conn = CtrlConn { stream, next_id: 0 };
        let hello = WireMessage::Hello { role: Role::Coordinator, node: from_node as u32 };
        write_message(&mut conn.stream, &hello)?;
        conn.stream.flush()?;
        match read_message(&mut conn.stream)? {
            WireMessage::HelloAck { .. } => Ok(conn),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected HelloAck, got {other:?}"),
            )),
        }
    }

    /// Sends one request and blocks for its response.
    pub(crate) fn request(&mut self, body: Request) -> io::Result<Response> {
        self.next_id += 1;
        let id = self.next_id;
        write_message(&mut self.stream, &WireMessage::Request { id, body })?;
        self.stream.flush()?;
        loop {
            match read_message(&mut self.stream)? {
                WireMessage::Response { id: got, body } if got == id => return Ok(body),
                WireMessage::Response { .. } => continue,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected Response, got {other:?}"),
                    ))
                }
            }
        }
    }
}

/// One node's answer to a phase: committed count and cumulative sent counts.
fn expect_phase_done(response: Response) -> Result<(u64, Vec<u64>), String> {
    match response {
        Response::PhaseDone { committed, sent } => Ok((committed, sent)),
        Response::Error(message) => Err(message),
        other => Err(format!("expected PhaseDone, got {other:?}")),
    }
}

/// Runs `iterations` stepped iterations across the cluster. Returns total
/// committed transactions and the number of epochs closed.
pub(crate) fn run_cluster(
    inner: &NodeInner,
    iterations: u32,
    partitioned_txns: u64,
    single_master_txns: u64,
) -> Result<(u64, u32), String> {
    let num_nodes = inner.config.num_nodes;
    let master = inner.config.master_node();
    let conns: Vec<Mutex<CtrlConn>> = inner
        .addrs
        .iter()
        .map(|addr| {
            CtrlConn::connect(addr, inner.node)
                .map(Mutex::new)
                .map_err(|e| format!("coordinator cannot reach {addr}: {e}"))
        })
        .collect::<Result<_, String>>()?;

    // last_sent[s][r]: cumulative batches node s reported shipping to r.
    let mut last_sent: Vec<Vec<u64>> = vec![vec![0; num_nodes]; num_nodes];
    let mut epoch = {
        // The coordinator's own epoch is the cluster's: every node starts at
        // 1 and only fences advance it.
        let status =
            conn_request(&conns[inner.node], Request::Admin(star_proto::AdminQuery::Status))?;
        match status {
            Response::Status(status) => status.epoch,
            other => return Err(format!("expected Status, got {other:?}")),
        }
    };
    let mut committed_total = 0u64;
    let mut epochs_closed = 0u32;

    for _ in 0..iterations {
        // Partitioned phase, all nodes in parallel.
        // Empty baselines and failure set: the healthy steady-state path —
        // nodes skip fast-forwarding and route by configured primaries.
        let phase_results = broadcast(&conns, |_node| Request::RunPhase {
            phase: WirePhase::Partitioned,
            epoch,
            txns: partitioned_txns,
            baselines: Vec::new(),
            failed: Vec::new(),
        })?;
        for (node, response) in phase_results.into_iter().enumerate() {
            let (committed, sent) = expect_phase_done(response)?;
            committed_total += committed;
            last_sent[node] = sent;
        }
        fence_all(&conns, &last_sent, epoch)?;
        epoch += 1;
        epochs_closed += 1;

        // Single-master phase, master only (the other nodes' sent counts are
        // unchanged, so their rows in `last_sent` stay valid).
        if single_master_txns > 0 {
            let response = conn_request(
                &conns[master],
                Request::RunPhase {
                    phase: WirePhase::SingleMaster,
                    epoch,
                    txns: single_master_txns,
                    baselines: Vec::new(),
                    failed: Vec::new(),
                },
            )?;
            let (committed, sent) = expect_phase_done(response)?;
            committed_total += committed;
            last_sent[master] = sent;
        }
        fence_all(&conns, &last_sent, epoch)?;
        epoch += 1;
        epochs_closed += 1;
    }

    Ok((committed_total, epochs_closed))
}

fn conn_request(conn: &Mutex<CtrlConn>, body: Request) -> Result<Response, String> {
    let mut conn_guard = conn.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    conn_guard.request(body).map_err(|e| format!("control request failed: {e}"))
}

/// Sends one request to every node in parallel and collects the responses in
/// node order.
fn broadcast(
    conns: &[Mutex<CtrlConn>],
    make_request: impl Fn(usize) -> Request + Sync,
) -> Result<Vec<Response>, String> {
    let results: Vec<Result<Response, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = conns
            .iter()
            .enumerate()
            .map(|(node, conn)| {
                let request = make_request(node);
                scope.spawn(move || conn_request(conn, request))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle.join().unwrap_or_else(|_| Err("control thread panicked".to_string()))
            })
            .collect()
    });
    results.into_iter().collect()
}

/// Fences every node for `epoch`: receiver `r` waits for `last_sent[s][r]`
/// batches from each sender `s`.
fn fence_all(conns: &[Mutex<CtrlConn>], last_sent: &[Vec<u64>], epoch: u32) -> Result<(), String> {
    let responses = broadcast(conns, |receiver| Request::Fence {
        epoch,
        expected: last_sent.iter().map(|sent_by_s| sent_by_s[receiver]).collect(),
        failed: Vec::new(),
    })?;
    for (node, response) in responses.into_iter().enumerate() {
        match response {
            Response::FenceDone { .. } => {}
            Response::Error(message) => {
                return Err(format!("fence failed on node {node}: {message}"))
            }
            other => return Err(format!("node {node}: expected FenceDone, got {other:?}")),
        }
    }
    Ok(())
}
