//! One node of a STAR TCP cluster.
//!
//! ```text
//! star-serverd --bootstrap cluster.toml --node 1
//! ```
//!
//! Serves until a `Shutdown` request arrives (e.g. `star-admin shutdown`).

use star_serverd::{Bootstrap, NodeServer};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: star-serverd --bootstrap <file> --node <id>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut bootstrap_path: Option<String> = None;
    let mut node_id: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bootstrap" => bootstrap_path = args.next(),
            "--node" => node_id = args.next().and_then(|v| v.parse().ok()),
            "--help" | "-h" => return usage(),
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }
    let (Some(path), Some(node)) = (bootstrap_path, node_id) else {
        return usage();
    };
    let boot = match Bootstrap::from_file(&path) {
        Ok(boot) => boot,
        Err(e) => {
            eprintln!("star-serverd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match NodeServer::start(&boot, node) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("star-serverd: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "star-serverd: node {node} serving on {} ({} node(s), {} partition(s), seed {})",
        server.local_addr(),
        boot.config.num_nodes,
        boot.config.partitions,
        boot.config.seed
    );
    server.wait();
    println!("star-serverd: node {node} shut down");
    ExitCode::SUCCESS
}
