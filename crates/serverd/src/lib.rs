//! `star-serverd`: the real TCP deployment of the STAR engine.
//!
//! Each node of a cluster runs one `star-serverd` process, configured by a
//! shared bootstrap file ([`bootstrap`]). Nodes replicate committed writes
//! to each other over a TCP mesh ([`transport`]) that implements the same
//! [`Transport`](star_net::Transport) seam as the deterministic in-memory
//! endpoint; the per-transaction execution paths are shared with the
//! simulated engine (`star_core::exec`), so the deployment and the
//! simulation can only diverge in the transport — which the transport-parity
//! harness (`tests/parity.rs`) checks by asserting byte-identical committed
//! histories, election logs and replica digests between the two.
//!
//! The node that receives a client's `Run` request acts as the coordinator
//! ([`coordinator`]), driving the same two-fences-per-iteration stepped
//! schedule as the engine's `run_iteration_stepped`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bootstrap;
pub mod coordinator;
pub mod node;
pub mod transport;

pub use bootstrap::Bootstrap;
pub use node::{replica_digest, NodeServer};
pub use transport::TcpMesh;
