//! Transport parity: wire == simulation, byte for byte.
//!
//! The same seeded YCSB workload is driven twice — once through a real
//! 3-node localhost TCP cluster, once through the in-memory simulated engine
//! (`run_iteration_stepped`, the deterministic twin) — and the results are
//! compared at the byte level via the canonical protocol encodings:
//!
//! * the committed histories (merged across server nodes, stable-sorted by
//!   `(epoch, executor)`) must be **byte-identical** under `encode_history`;
//! * every node's election log must be byte-identical under
//!   `encode_elections`;
//! * every node's replica must digest identically to the twin's replica of
//!   the same node id;
//! * the merged wire history must pass the serializability checker.
//!
//! Run at 0%, 10% and 50% cross-partition traffic, per the regression-suite
//! contract in the ISSUE.

use star_core::engine::StarEngine;
use star_core::history::{CommittedTxn, HistoryRecorder};
use star_core::workload::Workload;
use star_proto::{
    encode_elections, encode_history, read_message, write_message, AdminQuery, Request, Response,
    Role, WireMessage,
};
use star_serverd::{replica_digest, Bootstrap, NodeServer};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

const ITERATIONS: u32 = 3;
const PARTITIONED_TXNS: u64 = 20;
const SINGLE_MASTER_TXNS: u64 = 10;

struct Conn {
    stream: TcpStream,
    next_id: u64,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut conn = Conn { stream, next_id: 0 };
        write_message(&mut conn.stream, &WireMessage::Hello { role: Role::Admin, node: 0 })
            .expect("hello");
        match read_message(&mut conn.stream).expect("ack") {
            WireMessage::HelloAck { .. } => conn,
            other => panic!("expected HelloAck, got {other:?}"),
        }
    }

    fn request(&mut self, body: Request) -> Response {
        self.next_id += 1;
        let id = self.next_id;
        write_message(&mut self.stream, &WireMessage::Request { id, body }).expect("write");
        loop {
            match read_message(&mut self.stream).expect("read") {
                WireMessage::Response { id: got, body } if got == id => return body,
                WireMessage::Response { .. } => continue,
                other => panic!("expected Response, got {other:?}"),
            }
        }
    }
}

/// Boots a 3-node localhost cluster for `cross_pct`% cross-partition YCSB.
fn boot_cluster(cross_pct: f64) -> (Vec<NodeServer>, Bootstrap) {
    let listeners: Vec<TcpListener> =
        (0..3).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().expect("addr").to_string()).collect();
    let text = format!(
        "[cluster]\nnodes = [{}]\nfull_replicas = 1\nworkers_per_node = 1\n\
         partitions = 6\nseed = 42\n\n[workload]\nrows_per_partition = 64\n\
         ops_per_transaction = 4\nread_pct = 80.0\ncross_partition_pct = {cross_pct}\n",
        addrs.iter().map(|a| format!("\"{a}\"")).collect::<Vec<_>>().join(", ")
    );
    let boot = Bootstrap::parse(&text).expect("bootstrap parses");
    let servers: Vec<NodeServer> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| NodeServer::start_on(listener, &boot, id).expect("start node"))
        .collect();
    (servers, boot)
}

/// The simulation twin: same config, same workload, same stepped schedule.
fn run_twin(boot: &Bootstrap) -> (StarEngine, Arc<HistoryRecorder>, u64) {
    let workload: Arc<dyn Workload> = Arc::new(boot.ycsb());
    let mut engine = StarEngine::new(boot.config.clone(), workload).expect("twin engine");
    let recorder = Arc::new(HistoryRecorder::new());
    engine.set_history_recorder(Arc::clone(&recorder));
    for _ in 0..ITERATIONS {
        engine.run_iteration_stepped(PARTITIONED_TXNS, SINGLE_MASTER_TXNS);
    }
    engine.quiesce();
    let committed = engine.counters().snapshot().committed;
    (engine, recorder, committed)
}

fn parity_at(cross_pct: f64) {
    let (servers, boot) = boot_cluster(cross_pct);
    let mut coordinator = Conn::connect(servers[0].local_addr());
    let wire_committed = match coordinator.request(Request::Run {
        iterations: ITERATIONS,
        partitioned_txns: PARTITIONED_TXNS,
        single_master_txns: SINGLE_MASTER_TXNS,
    }) {
        Response::RunDone { committed, epochs } => {
            assert_eq!(epochs, 2 * ITERATIONS, "two epochs close per iteration");
            committed
        }
        other => panic!("expected RunDone, got {other:?}"),
    };
    assert!(wire_committed > 0, "the cluster committed nothing");

    // Collect every node's history, election log and replica digest.
    let mut wire_history: Vec<CommittedTxn> = Vec::new();
    let mut wire_elections = Vec::new();
    let mut wire_digests = Vec::new();
    for server in &servers {
        let mut admin = Conn::connect(server.local_addr());
        match admin.request(Request::Admin(AdminQuery::History)) {
            Response::History(txns) => {
                wire_history.extend(txns.iter().map(|t| t.to_committed()));
            }
            other => panic!("expected History, got {other:?}"),
        }
        match admin.request(Request::Admin(AdminQuery::Elections)) {
            Response::Elections(log) => wire_elections.push(log),
            other => panic!("expected Elections, got {other:?}"),
        }
        match admin.request(Request::Admin(AdminQuery::ReplicaDigest)) {
            Response::Digest { records, digest } => wire_digests.push((records, digest)),
            other => panic!("expected Digest, got {other:?}"),
        }
    }
    // Per-node histories are already in stepped order; the stable sort by
    // (epoch, executor) interleaves them into the twin's global order.
    wire_history.sort_by_key(|t| (t.epoch, t.executor));

    let (twin_engine, twin_recorder, twin_committed) = run_twin(&boot);

    // Byte-identical committed histories.
    let twin_history = twin_recorder.committed();
    assert_eq!(
        wire_committed, twin_committed,
        "commit counts diverge at {cross_pct}% cross-partition"
    );
    assert_eq!(
        encode_history(&wire_history),
        encode_history(&twin_history),
        "wire and simulated histories are not byte-identical at {cross_pct}%"
    );

    // Byte-identical election logs on every node.
    let twin_elections = encode_elections(twin_engine.elections());
    for (node, log) in wire_elections.iter().enumerate() {
        let encoded = encode_elections(&log.iter().map(|e| e.to_election()).collect::<Vec<_>>());
        assert_eq!(encoded, twin_elections, "node {node} election log diverges");
    }

    // Identical replica state, node by node.
    for (node, &wire_digest) in wire_digests.iter().enumerate() {
        let twin_db = &twin_engine.cluster().nodes()[node].db;
        assert_eq!(
            wire_digest,
            replica_digest(twin_db),
            "node {node} replica diverges at {cross_pct}%"
        );
    }

    // The wire history is serializable under the chaos checker's oracle.
    let report = star_chaos::check_history(&wire_history);
    assert!(
        report.is_serializable(),
        "wire history not serializable at {cross_pct}%: {:?}",
        report.violation
    );
    assert_eq!(report.txns, wire_history.len());

    for server in &servers {
        server.shutdown();
    }
}

#[test]
fn parity_at_zero_percent_cross_partition() {
    parity_at(0.0);
}

#[test]
fn parity_at_ten_percent_cross_partition() {
    parity_at(10.0);
}

#[test]
fn parity_at_fifty_percent_cross_partition() {
    parity_at(50.0);
}
