//! TcpMesh reconnect behaviour: a peer that drops its inbound connection
//! (it crashed, or restarted) must not wedge the sender — one reconnect
//! attempt per send, and a peer that never comes back is a typed
//! [`SendError::Disconnected`], not a hang. The receiving side must
//! likewise survive a connection dying mid-frame.

use star_common::{FieldValue, Row, Tid};
use star_core::messages::ReplicationBatch;
use star_net::{SendError, Transport};
use star_proto::{read_message, write_message, AdminQuery, Request, Role, WireMessage};
use star_replication::{EncodedEntry, LogEntry, Payload};
use star_serverd::{Bootstrap, NodeServer, TcpMesh};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

fn batch(epoch: u32, key: u64) -> ReplicationBatch {
    let entry = EncodedEntry::from_owned(LogEntry {
        table: 0,
        partition: 0,
        key,
        tid: Tid::from_raw(key + 1),
        payload: Payload::Value(Row::new(vec![FieldValue::U64(key * 10)])),
    });
    ReplicationBatch { from_node: 0, epoch, entries: vec![entry] }
}

/// Reads one replication frame off an accepted mesh connection.
fn read_replication(stream: &mut TcpStream) -> (u32, u32) {
    match read_message(stream).expect("frame decodes") {
        WireMessage::Replication { from, epoch, .. } => (from, epoch),
        other => panic!("expected Replication, got {other:?}"),
    }
}

/// The peer drops its connection between sends (a crash/restart); the
/// mesh's single retry reconnects and delivers on a fresh connection, and
/// the sent counter reflects only successful deliveries.
#[test]
fn send_reconnects_after_the_peer_drops_the_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let mesh = TcpMesh::new(0, vec!["127.0.0.1:0".into(), addr]);

    mesh.send(1, batch(1, 7)).expect("first send connects lazily");
    let (mut conn1, _) = listener.accept().expect("accept");
    assert_eq!(read_replication(&mut conn1), (0, 1));

    // Peer "restarts": the accepted connection dies with the old process.
    drop(conn1);
    std::thread::sleep(Duration::from_millis(50));

    // The kernel may buffer one write before noticing the peer reset, so
    // the send that *observes* the failure (and reconnects) may be the
    // first or the second. Either way a fresh connection must arrive.
    let mut delivered = 0u32;
    for attempt in 0u64..2 {
        if mesh.send(1, batch(2, 8 + attempt)).is_ok() {
            delivered += 1;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let (mut conn2, _) = listener.accept().expect("reconnected");
    assert_eq!(read_replication(&mut conn2).0, 0, "replayed frame comes from node 0");
    assert!(delivered >= 1, "at least one send must succeed after reconnecting");
    assert_eq!(
        mesh.sent_counts()[1],
        u64::from(1 + delivered),
        "sent counter tracks successful sends only"
    );
}

/// A peer that never comes back: the mesh retries until its connect
/// timeout, then reports the typed disconnect error instead of hanging.
#[test]
fn send_to_a_dead_peer_is_a_typed_error() {
    // Bind-then-drop reserves an address nobody is listening on.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);

    let mesh = TcpMesh::new(0, vec!["127.0.0.1:0".into(), addr])
        .with_connect_timeout(Duration::from_millis(100));
    match mesh.send(1, batch(1, 3)) {
        Err(SendError::Disconnected(1)) => {}
        other => panic!("expected Disconnected(1), got {other:?}"),
    }
    assert_eq!(mesh.sent_counts()[1], 0, "a failed send must not count as sent");
}

/// A connection that dies mid-frame must not corrupt the receiving node:
/// the server drops that connection and keeps serving fresh ones.
#[test]
fn server_survives_a_connection_dying_mid_frame() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let boot = Bootstrap::parse(&format!(
        "[cluster]\nnodes = [\"{addr}\"]\nfull_replicas = 1\nworkers_per_node = 1\n\
         partitions = 2\nseed = 7\n\n[workload]\nrows_per_partition = 8\n"
    ))
    .expect("bootstrap parses");
    let server = NodeServer::start_on(listener, &boot, 0).expect("server starts");

    // Half a frame: a valid length prefix promising more bytes than sent.
    let mut torn = TcpStream::connect(server.local_addr()).expect("connect");
    torn.write_all(&[64, 0, 0, 0, 2]).expect("partial frame bytes");
    drop(torn);

    // The server must still answer a well-formed admin query.
    let mut admin = TcpStream::connect(server.local_addr()).expect("reconnect");
    write_message(&mut admin, &WireMessage::Hello { role: Role::Admin, node: 0 }).expect("hello");
    match read_message(&mut admin).expect("ack") {
        WireMessage::HelloAck { .. } => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    write_message(
        &mut admin,
        &WireMessage::Request { id: 1, body: Request::Admin(AdminQuery::Status) },
    )
    .expect("status request");
    match read_message(&mut admin).expect("status response") {
        WireMessage::Response { id: 1, .. } => {}
        other => panic!("expected Response, got {other:?}"),
    }
    server.shutdown();
}
