//! Bootstrap-file parsing coverage: valid and invalid node lists, duplicate
//! node ids, missing full-replica counts, grammar errors, and the
//! `ClusterConfig::to_builder()` round trip.

use star_serverd::Bootstrap;

const VALID: &str = r#"
    [cluster]
    nodes = ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"]
    full_replicas = 2
    workers_per_node = 2
    partitions = 9
    seed = 1234

    [workload]
    rows_per_partition = 128
    ops_per_transaction = 8
    read_pct = 75.0
    cross_partition_pct = 15.0
"#;

/// Parses `text`, expecting failure, and returns the error message.
fn parse_err(text: &str) -> String {
    match Bootstrap::parse(text) {
        Ok(boot) => panic!("expected parse error, got {boot:?}"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn valid_file_builds_the_expected_config() {
    let boot = Bootstrap::parse(VALID).expect("valid file parses");
    assert_eq!(boot.addrs, vec!["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"]);
    assert_eq!(boot.config.num_nodes, 3);
    assert_eq!(boot.config.full_replicas, 2);
    assert_eq!(boot.config.workers_per_node, 2);
    assert_eq!(boot.config.partitions, 9);
    assert_eq!(boot.config.seed, 1234);
    assert_eq!(boot.workload.partitions, 9, "workload inherits the cluster partition count");
    assert_eq!(boot.workload.rows_per_partition, 128);
    assert_eq!(boot.workload.ops_per_transaction, 8);
    assert!((boot.workload.read_fraction - 0.75).abs() < 1e-9);
    assert!((boot.workload.cross_partition_fraction - 0.15).abs() < 1e-9);
}

#[test]
fn optional_keys_fall_back_to_builder_defaults() {
    let boot = Bootstrap::parse(
        "[cluster]\nnodes = [\"127.0.0.1:7101\", \"127.0.0.1:7102\"]\nfull_replicas = 1\n",
    )
    .expect("minimal file parses");
    assert_eq!(boot.config.num_nodes, 2);
    // Everything unspecified comes from ClusterConfig::builder(), so the
    // file can never produce a config the engine would not.
    let defaults = star_common::ClusterConfig::builder()
        .nodes(2)
        .full_replicas(1)
        .network_latency(std::time::Duration::ZERO)
        .build()
        .expect("builder defaults");
    assert_eq!(boot.config, defaults);
}

#[test]
fn empty_node_list_is_rejected() {
    let text = "[cluster]\nnodes = []\nfull_replicas = 1\n";
    assert!(parse_err(text).contains("nodes must be non-empty"), "{}", parse_err(text));
}

#[test]
fn non_array_node_list_is_rejected() {
    let text = "[cluster]\nnodes = 3\nfull_replicas = 1\n";
    assert!(parse_err(text).contains("must be an array"), "{}", parse_err(text));
}

#[test]
fn unquoted_node_list_items_are_rejected() {
    let text = "[cluster]\nnodes = [127.0.0.1:7101]\nfull_replicas = 1\n";
    assert!(parse_err(text).contains("quoted strings"), "{}", parse_err(text));
}

#[test]
fn missing_node_list_is_rejected() {
    let text = "[cluster]\nfull_replicas = 1\n";
    assert!(parse_err(text).contains("missing [cluster] nodes"), "{}", parse_err(text));
}

#[test]
fn duplicate_node_addresses_are_rejected() {
    let text = "[cluster]\nnodes = [\"127.0.0.1:7101\", \"127.0.0.1:7101\"]\nfull_replicas = 1\n";
    let err = parse_err(text);
    assert!(err.contains("duplicate node address"), "{err}");
    assert!(err.contains("127.0.0.1:7101"), "{err}");
}

#[test]
fn node_address_without_port_is_rejected() {
    let text = "[cluster]\nnodes = [\"localhost\"]\nfull_replicas = 1\n";
    assert!(parse_err(text).contains("has no port"), "{}", parse_err(text));
}

#[test]
fn missing_full_replicas_is_rejected() {
    let text = "[cluster]\nnodes = [\"127.0.0.1:7101\"]\n";
    assert!(parse_err(text).contains("missing [cluster] full_replicas"), "{}", parse_err(text));
}

#[test]
fn full_replica_count_is_checked_by_the_builder() {
    // More full replicas than nodes: the bootstrap parser itself accepts the
    // file, but ClusterConfig::builder() must refuse the topology.
    let text = "[cluster]\nnodes = [\"127.0.0.1:7101\", \"127.0.0.1:7102\"]\nfull_replicas = 3\n";
    assert!(Bootstrap::parse(text).is_err());
}

#[test]
fn missing_cluster_section_is_rejected() {
    let text = "[workload]\nread_pct = 50\n";
    assert!(parse_err(text).contains("missing [cluster] section"), "{}", parse_err(text));
}

#[test]
fn unknown_sections_and_keys_are_rejected() {
    let base = "[cluster]\nnodes = [\"127.0.0.1:7101\"]\nfull_replicas = 1\n";
    assert!(parse_err(&format!("{base}[storage]\npath = 1\n")).contains("unknown section"));
    assert!(parse_err(&format!("{base}threads = 4\n")).contains("unknown [cluster] key"));
    assert!(
        parse_err(&format!("{base}[workload]\nzipf = 0.5\n")).contains("unknown [workload] key")
    );
}

#[test]
fn percentages_must_stay_in_range() {
    let base = "[cluster]\nnodes = [\"127.0.0.1:7101\"]\nfull_replicas = 1\n[workload]\n";
    assert!(parse_err(&format!("{base}read_pct = 101\n")).contains("between 0 and 100"));
    assert!(parse_err(&format!("{base}cross_partition_pct = -0.5\n")).contains("between 0 and 100"));
}

#[test]
fn grammar_errors_carry_line_numbers() {
    assert!(parse_err("[cluster]\n[cluster]\n").contains("line 2: duplicate section"));
    assert!(parse_err("[cluster]\nseed = 1\nseed = 2\n").contains("line 3: duplicate key"));
    assert!(parse_err("seed = 1\n").contains("line 1: key before any [section]"));
    assert!(parse_err("[cluster]\nnot a pair\n").contains("line 2: expected `key = value`"));
    assert!(parse_err("[cluster]\nseed = what\n").contains("line 2: cannot parse value"));
}

#[test]
fn comments_and_whitespace_are_ignored() {
    let text = "  # header comment\n\n[cluster]  # trailing\n  nodes = [\"127.0.0.1:7101\"]  # one node\nfull_replicas = 1\n";
    let boot = Bootstrap::parse(text).expect("commented file parses");
    assert_eq!(boot.addrs, vec!["127.0.0.1:7101"]);
}

#[test]
fn config_round_trips_through_to_builder() {
    let boot = Bootstrap::parse(VALID).expect("valid file parses");
    let rebuilt = boot.config.to_builder().build().expect("to_builder() output rebuilds");
    assert_eq!(rebuilt, boot.config);
}

#[test]
fn render_round_trips_through_parse() {
    let boot = Bootstrap::parse(VALID).expect("valid file parses");
    let rendered = boot.render();
    assert_eq!(Bootstrap::parse(&rendered).expect("rendered text parses"), boot);
}

#[test]
fn from_file_round_trips_and_reports_missing_files() {
    let dir = std::env::temp_dir().join(format!("star-bootstrap-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("cluster.toml");
    std::fs::write(&path, VALID).expect("write bootstrap");
    let from_file = Bootstrap::from_file(&path).expect("file parses");
    assert_eq!(from_file, Bootstrap::parse(VALID).unwrap());
    std::fs::remove_dir_all(&dir).expect("cleanup");

    let missing = Bootstrap::from_file(dir.join("nope.toml"));
    assert!(missing.is_err());
    assert!(missing.unwrap_err().to_string().contains("cannot read bootstrap file"));
}
