//! Chaos over the wire against *real* `star-serverd` processes.
//!
//! The wire chaos supervisor spawns this crate's release of the server
//! binary behind fault-injecting proxies, SIGKILLs nodes mid-plan,
//! restarts them, drives catch-up recovery and re-election over TCP, and
//! compares the surviving cluster byte-for-byte against the stepped
//! simulation twin. This is the deployment-shaped end of the chaos
//! harness: no shared memory, no in-process shortcuts — process death is
//! `kill -9`.

use star_wire_chaos::plans::kill_recover_plan;
use star_wire_chaos::replay_plan_with_processes;
use std::path::Path;

/// A non-coordinator partial node is SIGKILLed mid-epoch and caught back
/// up; then the master process itself is killed (no full replica remains,
/// so the election mirror goes to `None`), recovered, and
/// deterministically re-elected. Histories, election logs and replica
/// digests must all match the simulation twin, and the merged history must
/// be serializable.
#[test]
fn sigkilled_processes_recover_and_reelect_over_real_tcp() {
    let binary = Path::new(env!("CARGO_BIN_EXE_star-serverd"));
    let plan = kill_recover_plan(9);
    let report = replay_plan_with_processes(&plan, binary)
        .expect("process-cluster replay runs to completion");
    assert!(report.committed > 0, "the killed-and-recovered cluster committed nothing");
    assert!(
        report.passed(),
        "real-process kill/recover cycle diverged from the twin: {:?}",
        report.violations
    );
}
