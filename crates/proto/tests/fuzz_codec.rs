//! Seeded fuzz / property tests for the wire codec.
//!
//! The ISSUE's contract: round-trip every frame type under a seeded
//! generator, and assert that truncated, oversized, garbage and
//! wrong-version frames are rejected with *typed errors* — never a panic.
//! Well over 1000 cases run per suite execution, all deterministic per seed,
//! so a failure reproduces exactly.

use bytes::{BufMut, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use star_common::{FieldValue, Operation, Row, Tid};
use star_proto::{
    decode_entries, decode_frame_header, encode_frame_header, AdminQuery, DecodeError, FrameBuffer,
    Request, Response, Role, WireElection, WireMessage, WirePhase, WireRecord, WireStatus, WireTxn,
    FRAME_HEADER_LEN, MAX_BODY_LEN,
};
use star_replication::{LogEntry, Payload};

// ---------------------------------------------------------------------------
// Seeded generators
// ---------------------------------------------------------------------------

fn gen_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..24usize);
    (0..len).map(|_| char::from(rng.gen_range(b' '..=b'~'))).collect()
}

fn gen_field(rng: &mut StdRng) -> FieldValue {
    match rng.gen_range(0..5u8) {
        0 => FieldValue::U64(rng.gen_range(0..u64::MAX)),
        1 => FieldValue::I64(rng.gen_range(i64::MIN..i64::MAX)),
        // Finite floats only: NaN would break the round-trip equality the
        // property asserts (the codec itself is bit-exact either way).
        2 => FieldValue::F64(rng.gen_range(-1.0e12..1.0e12)),
        3 => FieldValue::Str(gen_string(rng)),
        _ => {
            let len = rng.gen_range(0..32usize);
            let mut bytes = vec![0u8; len];
            rng.fill(&mut bytes[..]);
            FieldValue::Bytes(bytes)
        }
    }
}

fn gen_row(rng: &mut StdRng) -> Row {
    let n = rng.gen_range(0..6usize);
    Row::new((0..n).map(|_| gen_field(rng)).collect())
}

fn gen_operation(rng: &mut StdRng, depth: usize) -> Operation {
    let max = if depth == 0 { 5 } else { 6 };
    match rng.gen_range(0..max as u8) {
        0 => Operation::SetField { field: rng.gen_range(0..8usize), value: gen_field(rng) },
        1 => {
            Operation::AddI64 { field: rng.gen_range(0..8usize), delta: rng.gen_range(-1000..1000) }
        }
        2 => Operation::AddF64 {
            field: rng.gen_range(0..8usize),
            delta: rng.gen_range(-100.0..100.0),
        },
        3 => Operation::ConcatStr {
            field: rng.gen_range(0..8usize),
            prefix: gen_string(rng),
            max_len: rng.gen_range(0..500usize),
        },
        4 => Operation::SetRow { row: gen_row(rng) },
        _ => {
            let n = rng.gen_range(0..3usize);
            Operation::Multi { ops: (0..n).map(|_| gen_operation(rng, depth + 1)).collect() }
        }
    }
}

fn gen_log_entry(rng: &mut StdRng) -> LogEntry {
    LogEntry {
        table: rng.gen_range(0..4u32),
        partition: rng.gen_range(0..8usize),
        key: rng.gen_range(0..1_000_000u64),
        tid: Tid::new(rng.gen_range(0..1000u32), rng.gen_range(0..1000u64)),
        payload: if rng.gen_bool(0.5) {
            Payload::Value(gen_row(rng))
        } else {
            Payload::Operation(gen_operation(rng, 0))
        },
    }
}

fn gen_wire_txn(rng: &mut StdRng) -> WireTxn {
    let n_reads = rng.gen_range(0..4usize);
    let n_writes = rng.gen_range(0..4usize);
    WireTxn {
        epoch: rng.gen_range(0..1000u32),
        phase: if rng.gen_bool(0.5) { WirePhase::Partitioned } else { WirePhase::SingleMaster },
        executor: rng.gen_range(0..u64::MAX),
        tid: rng.gen_range(0..u64::MAX),
        reads: (0..n_reads)
            .map(|_| {
                (
                    rng.gen_range(0..4u32),
                    rng.gen_range(0..8u32),
                    rng.gen_range(0..1_000_000u64),
                    rng.gen_range(0..u64::MAX),
                )
            })
            .collect(),
        writes: (0..n_writes)
            .map(|_| {
                (
                    rng.gen_range(0..4u32),
                    rng.gen_range(0..8u32),
                    rng.gen_range(0..1_000_000u64),
                    gen_row(rng),
                )
            })
            .collect(),
    }
}

fn gen_node_ids(rng: &mut StdRng) -> Vec<u32> {
    let n = rng.gen_range(0..4usize);
    (0..n).map(|_| rng.gen_range(0..8u32)).collect()
}

fn gen_wire_record(rng: &mut StdRng) -> WireRecord {
    WireRecord {
        table: rng.gen_range(0..4u32),
        partition: rng.gen_range(0..8u32),
        key: rng.gen_range(0..1_000_000u64),
        tid: rng.gen_range(0..u64::MAX),
        row: gen_row(rng),
    }
}

fn gen_request(rng: &mut StdRng) -> Request {
    match rng.gen_range(0..10u8) {
        0 => Request::Ping,
        1 => Request::Get {
            table: rng.gen_range(0..4u32),
            partition: rng.gen_range(0..8u32),
            key: rng.gen_range(0..u64::MAX),
        },
        2 => Request::Run {
            iterations: rng.gen_range(0..100u32),
            partitioned_txns: rng.gen_range(0..10_000u64),
            single_master_txns: rng.gen_range(0..10_000u64),
        },
        3 => {
            let n = rng.gen_range(0..5usize);
            Request::RunPhase {
                phase: if rng.gen_bool(0.5) {
                    WirePhase::Partitioned
                } else {
                    WirePhase::SingleMaster
                },
                epoch: rng.gen_range(0..1000u32),
                txns: rng.gen_range(0..10_000u64),
                baselines: (0..n).map(|_| rng.gen_range(0..100_000u64)).collect(),
                failed: gen_node_ids(rng),
            }
        }
        4 => {
            let n = rng.gen_range(0..5usize);
            Request::Fence {
                epoch: rng.gen_range(0..1000u32),
                expected: (0..n).map(|_| rng.gen_range(0..100u64)).collect(),
                failed: gen_node_ids(rng),
            }
        }
        5 => Request::Admin(match rng.gen_range(0..4u8) {
            0 => AdminQuery::Status,
            1 => AdminQuery::Elections,
            2 => AdminQuery::History,
            _ => AdminQuery::ReplicaDigest,
        }),
        6 => Request::FetchPartition { partition: rng.gen_range(0..8u32) },
        7 => {
            let n = rng.gen_range(0..4usize);
            Request::InstallRecords { records: (0..n).map(|_| gen_wire_record(rng)).collect() }
        }
        8 => {
            let n = rng.gen_range(0..4usize);
            let m = rng.gen_range(0..5usize);
            Request::Rejoin {
                epoch: rng.gen_range(0..1000u32),
                last_committed: rng.gen_range(0..1000u32),
                failed: gen_node_ids(rng),
                elections: (0..n)
                    .map(|_| WireElection {
                        epoch: rng.gen_range(0..1000u32),
                        master: rng.gen_range(-1..8i64),
                        generation: rng.gen_range(0..100u64),
                    })
                    .collect(),
                recv_base: (0..m).map(|_| rng.gen_range(0..100u64)).collect(),
            }
        }
        _ => Request::Shutdown,
    }
}

fn gen_response(rng: &mut StdRng) -> Response {
    match rng.gen_range(0..13u8) {
        0 => Response::Ok,
        1 => Response::Error(gen_string(rng)),
        2 => Response::Pong,
        3 => Response::Record {
            tid: rng.gen_range(0..u64::MAX),
            row: if rng.gen_bool(0.5) { Some(gen_row(rng)) } else { None },
        },
        4 => Response::RunDone {
            committed: rng.gen_range(0..u64::MAX),
            epochs: rng.gen_range(0..1000u32),
        },
        5 => {
            let n = rng.gen_range(0..5usize);
            Response::PhaseDone {
                committed: rng.gen_range(0..10_000u64),
                sent: (0..n).map(|_| rng.gen_range(0..100u64)).collect(),
            }
        }
        6 => Response::FenceDone {
            epoch: rng.gen_range(0..1000u32),
            applied: rng.gen_range(0..10_000u64),
        },
        7 => Response::Status(WireStatus {
            node: rng.gen_range(0..8u32),
            epoch: rng.gen_range(0..1000u32),
            last_committed: rng.gen_range(0..1000u32),
            master: rng.gen_range(-1..8i64),
            generation: rng.gen_range(0..100u64),
            committed: rng.gen_range(0..u64::MAX),
            full_replica: rng.gen_bool(0.5),
        }),
        8 => {
            let n = rng.gen_range(0..4usize);
            Response::Elections(
                (0..n)
                    .map(|_| WireElection {
                        epoch: rng.gen_range(0..1000u32),
                        master: rng.gen_range(-1..8i64),
                        generation: rng.gen_range(0..100u64),
                    })
                    .collect(),
            )
        }
        9 => {
            let n = rng.gen_range(0..3usize);
            Response::History((0..n).map(|_| gen_wire_txn(rng)).collect())
        }
        10 => Response::Digest {
            records: rng.gen_range(0..u64::MAX),
            digest: rng.gen_range(0..u64::MAX),
        },
        11 => {
            let n = rng.gen_range(0..4usize);
            Response::Records((0..n).map(|_| gen_wire_record(rng)).collect())
        }
        _ => Response::InstallDone { installed: rng.gen_range(0..10_000u64) },
    }
}

fn gen_message(rng: &mut StdRng) -> WireMessage {
    match rng.gen_range(0..5u8) {
        0 => WireMessage::Hello {
            role: match rng.gen_range(0..4u8) {
                0 => Role::Client,
                1 => Role::Peer,
                2 => Role::Admin,
                _ => Role::Coordinator,
            },
            node: rng.gen_range(0..8u32),
        },
        1 => WireMessage::HelloAck {
            node: rng.gen_range(0..8u32),
            num_nodes: rng.gen_range(1..9u32),
        },
        2 => WireMessage::Request { id: rng.gen_range(0..u64::MAX), body: gen_request(rng) },
        3 => WireMessage::Response { id: rng.gen_range(0..u64::MAX), body: gen_response(rng) },
        _ => {
            let n = rng.gen_range(0..4usize);
            let entries: Vec<LogEntry> = (0..n).map(|_| gen_log_entry(rng)).collect();
            star_proto::replication_frame(
                rng.gen_range(0..8usize),
                rng.gen_range(0..1000u32),
                &entries,
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// 1500 random messages covering every frame kind and every request/response
/// tag round-trip exactly, including with trailing bytes after the frame.
#[test]
fn random_messages_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for case in 0..1500 {
        let msg = gen_message(&mut rng);
        let frame = msg.encode();
        let (decoded, consumed) =
            WireMessage::decode(&frame).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(consumed, frame.len(), "case {case}");
        assert_eq!(decoded, msg, "case {case}");

        // A streaming buffer usually holds the next frame's bytes too; the
        // decoder must consume exactly one frame and ignore the rest.
        let mut stream = frame.to_vec();
        stream.extend_from_slice(b"NEXTFRAME");
        let (decoded2, consumed2) = WireMessage::decode(&stream).expect("prefix decode");
        assert_eq!((decoded2, consumed2), (decoded, consumed), "case {case}");
    }
}

/// Replication entry blocks round-trip through the standalone block codec.
#[test]
fn entry_blocks_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for case in 0..300 {
        let n = rng.gen_range(0..6usize);
        let entries: Vec<LogEntry> = (0..n).map(|_| gen_log_entry(&mut rng)).collect();
        let block = star_proto::encode_entries(&entries);
        let decoded = decode_entries(&block).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(decoded, entries, "case {case}");
    }
}

/// Every strict prefix of a valid frame is rejected as `Truncated` — never a
/// panic, never a bogus success.
#[test]
fn every_truncation_is_rejected() {
    let mut rng = StdRng::seed_from_u64(0x7124);
    let mut cases = 0usize;
    for _ in 0..150 {
        let frame = gen_message(&mut rng).encode();
        let cuts: Vec<usize> = if frame.len() <= 64 {
            (0..frame.len()).collect()
        } else {
            // Long frame: every header boundary plus a sample of body cuts.
            let mut cuts: Vec<usize> = (0..=FRAME_HEADER_LEN).collect();
            cuts.extend((0..48).map(|_| rng.gen_range(FRAME_HEADER_LEN..frame.len())));
            cuts
        };
        for cut in cuts {
            cases += 1;
            match WireMessage::decode(&frame[..cut]) {
                Err(DecodeError::Truncated { .. }) => {}
                other => panic!("cut {cut}/{}: expected Truncated, got {other:?}", frame.len()),
            }
        }
    }
    assert!(cases >= 1000, "only {cases} truncation cases ran");
}

/// Pure garbage of every length decodes to a typed error or (vanishingly
/// rarely) a valid message — it never panics and never over-reads.
#[test]
fn garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x6AB6);
    for case in 0..1200 {
        let len = rng.gen_range(0..200usize);
        let mut raw = vec![0u8; len];
        rng.fill(&mut raw[..]);
        if let Ok((_, consumed)) = WireMessage::decode(&raw) {
            assert!(consumed <= raw.len(), "case {case} over-read");
        }
        // The header decoder alone must hold the same property.
        let _ = decode_frame_header(&raw);
    }
}

/// Single-byte corruptions of valid frames decode to a typed error or a
/// (different) valid message — never a panic.
#[test]
fn mutated_frames_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x0DD5);
    for case in 0..1000 {
        let frame = gen_message(&mut rng).encode();
        let mut raw = frame.to_vec();
        let at = rng.gen_range(0..raw.len());
        raw[at] ^= 1 << rng.gen_range(0..8u8);
        if let Ok((_, consumed)) = WireMessage::decode(&raw) {
            assert!(consumed <= raw.len(), "case {case} over-read");
        }
    }
}

/// A frame claiming a different protocol version is rejected with
/// `UnsupportedVersion` before its body is interpreted.
#[test]
fn wrong_version_is_typed() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..200 {
        let mut raw = gen_message(&mut rng).encode().to_vec();
        let bad: u16 = loop {
            let v = rng.gen_range(0..u16::MAX);
            if v != star_proto::PROTOCOL_VERSION {
                break v;
            }
        };
        raw[4..6].copy_from_slice(&bad.to_le_bytes());
        assert_eq!(WireMessage::decode(&raw), Err(DecodeError::UnsupportedVersion(bad)));
    }
}

/// A frame not opening with the `STAR` magic is rejected with `BadMagic`.
#[test]
fn bad_magic_is_typed() {
    let mut rng = StdRng::seed_from_u64(0xA61C);
    for _ in 0..200 {
        let mut raw = gen_message(&mut rng).encode().to_vec();
        let at = rng.gen_range(0..4usize);
        raw[at] ^= 0xff;
        assert!(matches!(WireMessage::decode(&raw), Err(DecodeError::BadMagic(_))));
    }
}

/// A body length above the protocol bound is rejected as `Oversized` without
/// the decoder ever trusting it as an allocation size.
#[test]
fn oversized_lengths_are_typed() {
    let mut rng = StdRng::seed_from_u64(0x0B16);
    for _ in 0..200 {
        let mut raw = gen_message(&mut rng).encode().to_vec();
        let len = rng.gen_range((MAX_BODY_LEN as u64 + 1)..=u32::MAX as u64) as u32;
        raw[8..12].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            WireMessage::decode(&raw),
            Err(DecodeError::Oversized { len: len as usize, max: MAX_BODY_LEN })
        );
    }
}

/// Byte-dribble lane: every generated frame fed one byte at a time through
/// the buffered incremental reader decodes to exactly the all-at-once result,
/// with no message surfacing early and no panic at any intermediate length.
#[test]
fn byte_dribble_matches_whole_frame_decode() {
    let mut rng = StdRng::seed_from_u64(0xD81B);
    for case in 0..300 {
        let msg = gen_message(&mut rng);
        let frame = msg.encode();
        let mut fb = FrameBuffer::new();
        for (i, byte) in frame.iter().enumerate() {
            fb.push(std::slice::from_ref(byte));
            let got = fb.next_message().unwrap_or_else(|e| panic!("case {case} byte {i}: {e}"));
            if i + 1 < frame.len() {
                assert!(got.is_none(), "case {case}: message surfaced at byte {i}");
            } else {
                assert_eq!(got, Some(msg.clone()), "case {case}");
            }
        }
        assert!(!fb.has_partial(), "case {case}: bytes left over");
    }
}

/// Mid-frame EOF through the incremental reader: any strict prefix of a
/// valid frame leaves the buffer waiting (a partial frame), never panicking
/// and never yielding a message.
#[test]
fn dribbled_prefixes_never_yield_or_panic() {
    let mut rng = StdRng::seed_from_u64(0xE0F);
    for case in 0..120 {
        let frame = gen_message(&mut rng).encode();
        let cut = rng.gen_range(0..frame.len());
        let mut fb = FrameBuffer::new();
        fb.push(&frame[..cut]);
        let got = fb.next_message().unwrap_or_else(|e| panic!("case {case} cut {cut}: {e}"));
        assert!(got.is_none(), "case {case}: message from a strict prefix");
        assert_eq!(fb.has_partial(), cut > 0, "case {case}");
    }
}

/// Unknown frame kinds and unknown body tags map to their own variants, so a
/// newer peer can be told apart from a corrupt one.
#[test]
fn unknown_kinds_and_tags_are_typed() {
    for kind in [0u8, 6, 7, 42, 255] {
        let mut buf = BytesMut::new();
        encode_frame_header(kind, 0, &mut buf);
        assert_eq!(WireMessage::decode(buf.as_slice()), Err(DecodeError::UnknownKind(kind)));
    }
    for tag in [10u8, 100, 255] {
        let mut body = BytesMut::new();
        body.put_u64_le(1);
        body.put_u8(tag);
        let mut frame = BytesMut::new();
        encode_frame_header(3, body.len(), &mut frame); // kind 3 = Request
        frame.put_slice(body.as_slice());
        assert_eq!(
            WireMessage::decode(frame.as_slice()),
            Err(DecodeError::UnknownTag { context: "request", tag })
        );
    }
}
