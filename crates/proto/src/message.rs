//! The messages that ride inside frames.
//!
//! Five frame kinds cover the whole deployment:
//!
//! * `Hello` / `HelloAck` — connection handshake, declaring the peer's role;
//! * `Request` / `Response` — correlation-id-tagged RPC, so clients can
//!   pipeline many requests down one connection and match answers by id;
//! * `Replication` — the one-way peer-to-peer replication stream. Its entry
//!   block is carried as pre-encoded [`Bytes`] so a batch is serialized once
//!   at the sender and sliced zero-copy at the receiver.
//!
//! Committed transactions and master elections have canonical wire forms
//! ([`WireTxn`], [`WireElection`]) with explicit conversions to the core
//! types; the transport-parity harness compares the *encodings*, so "same
//! history" literally means byte-identical.

use crate::error::DecodeError;
use crate::frame::{decode_frame_header, encode_frame_header, FRAME_HEADER_LEN};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use star_common::{Epoch, NodeId, Row, Tid};
use star_core::engine::MasterElection;
use star_core::history::{CommittedTxn, RecordedRead, RecordedWrite};
use star_replication::{decode_row, encode_row, ExecutionPhase, LogEntry};

// ---------------------------------------------------------------------------
// Cursor helpers. Every read is bounds checked first: the vendored `bytes`
// stub (like the real crate) panics on underflow, and this crate must return
// typed errors on arbitrary input instead.
// ---------------------------------------------------------------------------

fn take_u8(cur: &mut &[u8]) -> Result<u8, DecodeError> {
    if cur.remaining() < 1 {
        return Err(DecodeError::Truncated { needed: 1, have: cur.remaining() });
    }
    Ok(cur.get_u8())
}

fn take_u32(cur: &mut &[u8]) -> Result<u32, DecodeError> {
    if cur.remaining() < 4 {
        return Err(DecodeError::Truncated { needed: 4, have: cur.remaining() });
    }
    Ok(cur.get_u32_le())
}

fn take_u64(cur: &mut &[u8]) -> Result<u64, DecodeError> {
    if cur.remaining() < 8 {
        return Err(DecodeError::Truncated { needed: 8, have: cur.remaining() });
    }
    Ok(cur.get_u64_le())
}

fn take_i64(cur: &mut &[u8]) -> Result<i64, DecodeError> {
    if cur.remaining() < 8 {
        return Err(DecodeError::Truncated { needed: 8, have: cur.remaining() });
    }
    Ok(cur.get_i64_le())
}

/// Reads a `u32` element count that prefixes a sequence whose elements each
/// occupy at least `min_element_size` bytes; a count the remaining input
/// cannot possibly hold is rejected before it becomes an allocation hint.
fn take_count(cur: &mut &[u8], min_element_size: usize) -> Result<usize, DecodeError> {
    let n = take_u32(cur)? as usize;
    if n.saturating_mul(min_element_size.max(1)) > cur.remaining() {
        return Err(DecodeError::Malformed("count prefix exceeds remaining input"));
    }
    Ok(n)
}

/// Reads a count-prefixed list of node ids (`u32`s).
fn take_node_ids(cur: &mut &[u8]) -> Result<Vec<u32>, DecodeError> {
    let n = take_count(cur, 4)?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(take_u32(cur)?);
    }
    Ok(nodes)
}

fn take_string(cur: &mut &[u8]) -> Result<String, DecodeError> {
    let len = take_u32(cur)? as usize;
    if cur.remaining() < len {
        return Err(DecodeError::Truncated { needed: len, have: cur.remaining() });
    }
    let mut raw = vec![0u8; len];
    cur.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| DecodeError::Malformed("invalid utf-8 in string"))
}

fn put_string(s: &str, buf: &mut BytesMut) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn take_wire_row(cur: &mut &[u8]) -> Result<Row, DecodeError> {
    decode_row(cur).map_err(|_| DecodeError::Malformed("row"))
}

// ---------------------------------------------------------------------------
// Roles and phases
// ---------------------------------------------------------------------------

/// What a connecting peer is, declared in its `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A client driving transactions (`star-client`).
    Client,
    /// Another cluster node's replication stream.
    Peer,
    /// An inspection session (`star-admin`).
    Admin,
    /// The coordinator's phase-control connection.
    Coordinator,
}

impl Role {
    fn to_u8(self) -> u8 {
        match self {
            Role::Client => 0,
            Role::Peer => 1,
            Role::Admin => 2,
            Role::Coordinator => 3,
        }
    }

    fn from_u8(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            0 => Ok(Role::Client),
            1 => Ok(Role::Peer),
            2 => Ok(Role::Admin),
            3 => Ok(Role::Coordinator),
            tag => Err(DecodeError::UnknownTag { context: "role", tag }),
        }
    }
}

/// Which phase a `RunPhase` request starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WirePhase {
    /// The partitioned (no-concurrency-control) phase.
    Partitioned,
    /// The single-master (Silo OCC) phase.
    SingleMaster,
}

impl WirePhase {
    fn to_u8(self) -> u8 {
        match self {
            WirePhase::Partitioned => 0,
            WirePhase::SingleMaster => 1,
        }
    }

    fn from_u8(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            0 => Ok(WirePhase::Partitioned),
            1 => Ok(WirePhase::SingleMaster),
            tag => Err(DecodeError::UnknownTag { context: "phase", tag }),
        }
    }
}

/// An admin inspection query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminQuery {
    /// Node status: epoch, elected master, commit counters.
    Status,
    /// The full election log.
    Elections,
    /// The node's committed history, in canonical wire form.
    History,
    /// A commutative digest of the node's replica state.
    ReplicaDigest,
}

impl AdminQuery {
    fn to_u8(self) -> u8 {
        match self {
            AdminQuery::Status => 0,
            AdminQuery::Elections => 1,
            AdminQuery::History => 2,
            AdminQuery::ReplicaDigest => 3,
        }
    }

    fn from_u8(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            0 => Ok(AdminQuery::Status),
            1 => Ok(AdminQuery::Elections),
            2 => Ok(AdminQuery::History),
            3 => Ok(AdminQuery::ReplicaDigest),
            tag => Err(DecodeError::UnknownTag { context: "admin query", tag }),
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical wire forms of core types
// ---------------------------------------------------------------------------

/// A master election in canonical wire form (`master == -1` means none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireElection {
    /// Epoch whose fence held the election.
    pub epoch: Epoch,
    /// Elected master node id, or -1 when no healthy full replica remained.
    pub master: i64,
    /// Election generation.
    pub generation: u64,
}

impl WireElection {
    /// Converts from the engine's election record.
    pub fn from_election(e: &MasterElection) -> Self {
        WireElection {
            epoch: e.epoch,
            master: e.master.map(|m| m as i64).unwrap_or(-1),
            generation: e.generation,
        }
    }

    /// Converts back to the engine's election record.
    pub fn to_election(self) -> MasterElection {
        MasterElection {
            epoch: self.epoch,
            master: usize::try_from(self.master).ok(),
            generation: self.generation,
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.epoch);
        buf.put_i64_le(self.master);
        buf.put_u64_le(self.generation);
    }

    fn decode(cur: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(WireElection {
            epoch: take_u32(cur)?,
            master: take_i64(cur)?,
            generation: take_u64(cur)?,
        })
    }
}

/// A committed transaction in canonical wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTxn {
    /// Epoch the transaction committed in.
    pub epoch: Epoch,
    /// Phase it executed in.
    pub phase: WirePhase,
    /// Executor id (partition id, or `MASTER_EXECUTOR_OFFSET + worker`).
    pub executor: u64,
    /// The commit TID (raw form).
    pub tid: u64,
    /// Observed reads: `(table, partition, key, observed tid)`.
    pub reads: Vec<(u32, u32, u64, u64)>,
    /// Installed writes: `(table, partition, key, row)`.
    pub writes: Vec<(u32, u32, u64, Row)>,
}

impl WireTxn {
    /// Converts from the engine's committed-history record.
    pub fn from_committed(txn: &CommittedTxn) -> Self {
        WireTxn {
            epoch: txn.epoch,
            phase: match txn.phase {
                ExecutionPhase::Partitioned => WirePhase::Partitioned,
                ExecutionPhase::SingleMaster => WirePhase::SingleMaster,
            },
            executor: txn.executor,
            tid: txn.tid.raw(),
            reads: txn
                .reads
                .iter()
                .map(|r| (r.table, r.partition as u32, r.key, r.tid.raw()))
                .collect(),
            writes: txn
                .writes
                .iter()
                .map(|w| (w.table, w.partition as u32, w.key, w.row.clone()))
                .collect(),
        }
    }

    /// Converts back to the engine's committed-history record.
    pub fn to_committed(&self) -> CommittedTxn {
        CommittedTxn {
            epoch: self.epoch,
            phase: match self.phase {
                WirePhase::Partitioned => ExecutionPhase::Partitioned,
                WirePhase::SingleMaster => ExecutionPhase::SingleMaster,
            },
            executor: self.executor,
            tid: Tid::from_raw(self.tid),
            reads: self
                .reads
                .iter()
                .map(|&(table, partition, key, tid)| RecordedRead {
                    table,
                    partition: partition as usize,
                    key,
                    tid: Tid::from_raw(tid),
                })
                .collect(),
            writes: self
                .writes
                .iter()
                .map(|(table, partition, key, row)| RecordedWrite {
                    table: *table,
                    partition: *partition as usize,
                    key: *key,
                    row: row.clone(),
                })
                .collect(),
        }
    }

    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.epoch);
        buf.put_u8(self.phase.to_u8());
        buf.put_u64_le(self.executor);
        buf.put_u64_le(self.tid);
        buf.put_u32_le(self.reads.len() as u32);
        for &(table, partition, key, tid) in &self.reads {
            buf.put_u32_le(table);
            buf.put_u32_le(partition);
            buf.put_u64_le(key);
            buf.put_u64_le(tid);
        }
        buf.put_u32_le(self.writes.len() as u32);
        for (table, partition, key, row) in &self.writes {
            buf.put_u32_le(*table);
            buf.put_u32_le(*partition);
            buf.put_u64_le(*key);
            encode_row(row, buf);
        }
    }

    fn decode(cur: &mut &[u8]) -> Result<Self, DecodeError> {
        let epoch = take_u32(cur)?;
        let phase = WirePhase::from_u8(take_u8(cur)?)?;
        let executor = take_u64(cur)?;
        let tid = take_u64(cur)?;
        let n_reads = take_count(cur, 24)?;
        let mut reads = Vec::with_capacity(n_reads);
        for _ in 0..n_reads {
            reads.push((take_u32(cur)?, take_u32(cur)?, take_u64(cur)?, take_u64(cur)?));
        }
        let n_writes = take_count(cur, 20)?;
        let mut writes = Vec::with_capacity(n_writes);
        for _ in 0..n_writes {
            writes.push((take_u32(cur)?, take_u32(cur)?, take_u64(cur)?, take_wire_row(cur)?));
        }
        Ok(WireTxn { epoch, phase, executor, tid, reads, writes })
    }
}

/// One replica record in canonical wire form, as moved by the recovery
/// frames ([`Request::FetchPartition`] / [`Request::InstallRecords`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRecord {
    /// Table of the record.
    pub table: u32,
    /// Partition of the record.
    pub partition: u32,
    /// Primary key.
    pub key: u64,
    /// TID of the record's current version (raw form).
    pub tid: u64,
    /// The row.
    pub row: Row,
}

impl WireRecord {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.table);
        buf.put_u32_le(self.partition);
        buf.put_u64_le(self.key);
        buf.put_u64_le(self.tid);
        encode_row(&self.row, buf);
    }

    fn decode(cur: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(WireRecord {
            table: take_u32(cur)?,
            partition: take_u32(cur)?,
            key: take_u64(cur)?,
            tid: take_u64(cur)?,
            row: take_wire_row(cur)?,
        })
    }
}

/// A record header is 24 bytes plus at least one row byte.
const WIRE_RECORD_MIN: usize = 25;

fn take_records(cur: &mut &[u8]) -> Result<Vec<WireRecord>, DecodeError> {
    let n = take_count(cur, WIRE_RECORD_MIN)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(WireRecord::decode(cur)?);
    }
    Ok(records)
}

fn put_records(records: &[WireRecord], buf: &mut BytesMut) {
    buf.put_u32_le(records.len() as u32);
    for record in records {
        record.encode(buf);
    }
}

/// Serializes a committed history into its canonical byte form. The parity
/// harness compares these buffers directly: byte equality is the test.
pub fn encode_history(txns: &[CommittedTxn]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(txns.len() as u32);
    for txn in txns {
        WireTxn::from_committed(txn).encode(&mut buf);
    }
    buf.freeze()
}

/// Serializes an election log into its canonical byte form.
pub fn encode_elections(log: &[MasterElection]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(log.len() as u32);
    for e in log {
        WireElection::from_election(e).encode(&mut buf);
    }
    buf.freeze()
}

/// Serializes a replication entry block (count-prefixed [`LogEntry`] stream)
/// once, for zero-copy reuse across the batch's destinations.
pub fn encode_entries(entries: &[LogEntry]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(entries.len() as u32);
    for entry in entries {
        entry.encode(&mut buf);
    }
    buf.freeze()
}

/// Decodes a replication entry block produced by [`encode_entries`].
pub fn decode_entries(block: &[u8]) -> Result<Vec<LogEntry>, DecodeError> {
    let mut cur = block;
    // A log entry header alone is 25 bytes.
    let n = take_count(&mut cur, 25)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(LogEntry::decode(&mut cur).map_err(|_| DecodeError::Malformed("log entry"))?);
    }
    if !cur.is_empty() {
        return Err(DecodeError::Malformed("trailing bytes after entry block"));
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------------

/// A client / coordinator / admin request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Point read of one record.
    Get {
        /// Table of the record.
        table: u32,
        /// Partition of the record.
        partition: u32,
        /// Primary key.
        key: u64,
    },
    /// Coordinator entry point: run `iterations` stepped iterations of the
    /// seeded workload across the whole cluster.
    Run {
        /// Number of partitioned/single-master iterations.
        iterations: u32,
        /// Transaction attempts per partition per partitioned phase.
        partitioned_txns: u64,
        /// Transaction attempts per master worker per single-master phase.
        single_master_txns: u64,
    },
    /// Intra-cluster: execute one stepped phase locally.
    RunPhase {
        /// Which phase.
        phase: WirePhase,
        /// The epoch the phase executes in.
        epoch: Epoch,
        /// Transaction attempts per local worker.
        txns: u64,
        /// Cumulative transaction-attempt counts each executor must have
        /// consumed *before* this phase: per partition for a partitioned
        /// phase, per master worker for a single-master phase. A node whose
        /// local worker lags a baseline (it just took over the partition, or
        /// it restarted) fast-forwards the worker's RNG to the baseline
        /// before executing, so the transaction stream continues exactly
        /// where the previous executor left it. Empty means "no baselines"
        /// (the healthy steady state, where local counters already match).
        baselines: Vec<u64>,
        /// Node ids the coordinator currently considers failed; the phase
        /// routes around them (effective primaries, healthy replica-target
        /// and master-broadcast sets).
        failed: Vec<u32>,
    },
    /// Intra-cluster: replication fence closing `epoch`. `expected[s]` is the
    /// cumulative number of replication batches node `s` has sent this node;
    /// the fence waits until they have all arrived, then applies everything.
    Fence {
        /// Epoch being closed.
        epoch: Epoch,
        /// Per-sender cumulative batch counts to wait for.
        expected: Vec<u64>,
        /// Node ids the coordinator considers failed as of this fence. A
        /// node id appearing here for the first time makes the fence revert
        /// the in-flight epoch (the crash discarded it cluster-wide), drop
        /// that sender's queued batches, and re-run the deterministic
        /// master election — the wire form of the simulator's fence-time
        /// failure detection.
        failed: Vec<u32>,
    },
    /// Supervisor: read every record of one locally held partition, in
    /// canonical order — the source half of a recovery catch-up copy.
    FetchPartition {
        /// Partition to read.
        partition: u32,
    },
    /// Supervisor: install records into the local replica under the Thomas
    /// write rule (apply-if-newer) — the target half of a recovery copy.
    InstallRecords {
        /// Records to install.
        records: Vec<WireRecord>,
    },
    /// Supervisor: adopt cluster state after a process restart, so the
    /// rejoining node agrees with the survivors about the epoch, the
    /// failure picture, the election log and the cumulative replication
    /// counters its fresh counters must be rebased onto.
    Rejoin {
        /// The cluster's current epoch.
        epoch: Epoch,
        /// The last epoch whose fence completed.
        last_committed: Epoch,
        /// Node ids still considered failed.
        failed: Vec<u32>,
        /// The full election log as of the rejoin.
        elections: Vec<WireElection>,
        /// Per-sender cumulative replication-batch counts already delivered
        /// to this node's address before the restart; the node's receive
        /// counters restart from these values.
        recv_base: Vec<u64>,
    },
    /// Admin inspection.
    Admin(AdminQuery),
    /// Graceful shutdown of the receiving node.
    Shutdown,
}

impl Request {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Request::Ping => buf.put_u8(0),
            Request::Get { table, partition, key } => {
                buf.put_u8(1);
                buf.put_u32_le(*table);
                buf.put_u32_le(*partition);
                buf.put_u64_le(*key);
            }
            Request::Run { iterations, partitioned_txns, single_master_txns } => {
                buf.put_u8(2);
                buf.put_u32_le(*iterations);
                buf.put_u64_le(*partitioned_txns);
                buf.put_u64_le(*single_master_txns);
            }
            Request::RunPhase { phase, epoch, txns, baselines, failed } => {
                buf.put_u8(3);
                buf.put_u8(phase.to_u8());
                buf.put_u32_le(*epoch);
                buf.put_u64_le(*txns);
                buf.put_u32_le(baselines.len() as u32);
                for &baseline in baselines {
                    buf.put_u64_le(baseline);
                }
                buf.put_u32_le(failed.len() as u32);
                for &node in failed {
                    buf.put_u32_le(node);
                }
            }
            Request::Fence { epoch, expected, failed } => {
                buf.put_u8(4);
                buf.put_u32_le(*epoch);
                buf.put_u32_le(expected.len() as u32);
                for &count in expected {
                    buf.put_u64_le(count);
                }
                buf.put_u32_le(failed.len() as u32);
                for &node in failed {
                    buf.put_u32_le(node);
                }
            }
            Request::Admin(query) => {
                buf.put_u8(5);
                buf.put_u8(query.to_u8());
            }
            Request::Shutdown => buf.put_u8(6),
            Request::FetchPartition { partition } => {
                buf.put_u8(7);
                buf.put_u32_le(*partition);
            }
            Request::InstallRecords { records } => {
                buf.put_u8(8);
                put_records(records, buf);
            }
            Request::Rejoin { epoch, last_committed, failed, elections, recv_base } => {
                buf.put_u8(9);
                buf.put_u32_le(*epoch);
                buf.put_u32_le(*last_committed);
                buf.put_u32_le(failed.len() as u32);
                for &node in failed {
                    buf.put_u32_le(node);
                }
                buf.put_u32_le(elections.len() as u32);
                for e in elections {
                    e.encode(buf);
                }
                buf.put_u32_le(recv_base.len() as u32);
                for &count in recv_base {
                    buf.put_u64_le(count);
                }
            }
        }
    }

    fn decode(cur: &mut &[u8]) -> Result<Self, DecodeError> {
        match take_u8(cur)? {
            0 => Ok(Request::Ping),
            1 => Ok(Request::Get {
                table: take_u32(cur)?,
                partition: take_u32(cur)?,
                key: take_u64(cur)?,
            }),
            2 => Ok(Request::Run {
                iterations: take_u32(cur)?,
                partitioned_txns: take_u64(cur)?,
                single_master_txns: take_u64(cur)?,
            }),
            3 => {
                let phase = WirePhase::from_u8(take_u8(cur)?)?;
                let epoch = take_u32(cur)?;
                let txns = take_u64(cur)?;
                let n = take_count(cur, 8)?;
                let mut baselines = Vec::with_capacity(n);
                for _ in 0..n {
                    baselines.push(take_u64(cur)?);
                }
                let failed = take_node_ids(cur)?;
                Ok(Request::RunPhase { phase, epoch, txns, baselines, failed })
            }
            4 => {
                let epoch = take_u32(cur)?;
                let n = take_count(cur, 8)?;
                let mut expected = Vec::with_capacity(n);
                for _ in 0..n {
                    expected.push(take_u64(cur)?);
                }
                let failed = take_node_ids(cur)?;
                Ok(Request::Fence { epoch, expected, failed })
            }
            5 => Ok(Request::Admin(AdminQuery::from_u8(take_u8(cur)?)?)),
            6 => Ok(Request::Shutdown),
            7 => Ok(Request::FetchPartition { partition: take_u32(cur)? }),
            8 => Ok(Request::InstallRecords { records: take_records(cur)? }),
            9 => {
                let epoch = take_u32(cur)?;
                let last_committed = take_u32(cur)?;
                let failed = take_node_ids(cur)?;
                let n = take_count(cur, 20)?;
                let mut elections = Vec::with_capacity(n);
                for _ in 0..n {
                    elections.push(WireElection::decode(cur)?);
                }
                let n = take_count(cur, 8)?;
                let mut recv_base = Vec::with_capacity(n);
                for _ in 0..n {
                    recv_base.push(take_u64(cur)?);
                }
                Ok(Request::Rejoin { epoch, last_committed, failed, elections, recv_base })
            }
            tag => Err(DecodeError::UnknownTag { context: "request", tag }),
        }
    }
}

/// Node status reported to `star-admin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStatus {
    /// Reporting node id.
    pub node: u32,
    /// Its current epoch.
    pub epoch: Epoch,
    /// The last epoch whose fence completed.
    pub last_committed: Epoch,
    /// The elected master (-1 when none).
    pub master: i64,
    /// The election generation.
    pub generation: u64,
    /// Transactions committed so far.
    pub committed: u64,
    /// Whether the node is a full replica.
    pub full_replica: bool,
}

/// A response to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Generic failure with a human-readable reason.
    Error(String),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Get`].
    Record {
        /// TID of the returned version (raw; 0 when absent).
        tid: u64,
        /// The row, if the key exists.
        row: Option<Row>,
    },
    /// Answer to [`Request::Run`].
    RunDone {
        /// Total transactions committed across the cluster.
        committed: u64,
        /// Epochs closed.
        epochs: u32,
    },
    /// Answer to [`Request::RunPhase`]: the phase ran locally.
    PhaseDone {
        /// Transactions committed by the local phase.
        committed: u64,
        /// Cumulative replication batches this node has sent, per
        /// destination.
        sent: Vec<u64>,
    },
    /// Answer to [`Request::Fence`].
    FenceDone {
        /// The epoch that was closed.
        epoch: Epoch,
        /// Log entries applied by this fence.
        applied: u64,
    },
    /// Answer to [`AdminQuery::Status`].
    Status(WireStatus),
    /// Answer to [`AdminQuery::Elections`].
    Elections(Vec<WireElection>),
    /// Answer to [`AdminQuery::History`].
    History(Vec<WireTxn>),
    /// Answer to [`AdminQuery::ReplicaDigest`].
    Digest {
        /// Records in the replica.
        records: u64,
        /// Commutative FNV digest over the replica's records.
        digest: u64,
    },
    /// Answer to [`Request::FetchPartition`]: the partition's records.
    Records(Vec<WireRecord>),
    /// Answer to [`Request::InstallRecords`].
    InstallDone {
        /// Records whose install actually replaced the local version (the
        /// Thomas write rule skips records the replica already has newer).
        installed: u64,
    },
}

impl Response {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Response::Ok => buf.put_u8(0),
            Response::Error(message) => {
                buf.put_u8(1);
                put_string(message, buf);
            }
            Response::Pong => buf.put_u8(2),
            Response::Record { tid, row } => {
                buf.put_u8(3);
                buf.put_u64_le(*tid);
                match row {
                    Some(row) => {
                        buf.put_u8(1);
                        encode_row(row, buf);
                    }
                    None => buf.put_u8(0),
                }
            }
            Response::RunDone { committed, epochs } => {
                buf.put_u8(4);
                buf.put_u64_le(*committed);
                buf.put_u32_le(*epochs);
            }
            Response::PhaseDone { committed, sent } => {
                buf.put_u8(5);
                buf.put_u64_le(*committed);
                buf.put_u32_le(sent.len() as u32);
                for &count in sent {
                    buf.put_u64_le(count);
                }
            }
            Response::FenceDone { epoch, applied } => {
                buf.put_u8(6);
                buf.put_u32_le(*epoch);
                buf.put_u64_le(*applied);
            }
            Response::Status(status) => {
                buf.put_u8(7);
                buf.put_u32_le(status.node);
                buf.put_u32_le(status.epoch);
                buf.put_u32_le(status.last_committed);
                buf.put_i64_le(status.master);
                buf.put_u64_le(status.generation);
                buf.put_u64_le(status.committed);
                buf.put_u8(u8::from(status.full_replica));
            }
            Response::Elections(log) => {
                buf.put_u8(8);
                buf.put_u32_le(log.len() as u32);
                for e in log {
                    e.encode(buf);
                }
            }
            Response::History(txns) => {
                buf.put_u8(9);
                buf.put_u32_le(txns.len() as u32);
                for txn in txns {
                    txn.encode(buf);
                }
            }
            Response::Digest { records, digest } => {
                buf.put_u8(10);
                buf.put_u64_le(*records);
                buf.put_u64_le(*digest);
            }
            Response::Records(records) => {
                buf.put_u8(11);
                put_records(records, buf);
            }
            Response::InstallDone { installed } => {
                buf.put_u8(12);
                buf.put_u64_le(*installed);
            }
        }
    }

    fn decode(cur: &mut &[u8]) -> Result<Self, DecodeError> {
        match take_u8(cur)? {
            0 => Ok(Response::Ok),
            1 => Ok(Response::Error(take_string(cur)?)),
            2 => Ok(Response::Pong),
            3 => {
                let tid = take_u64(cur)?;
                let row = match take_u8(cur)? {
                    0 => None,
                    1 => Some(take_wire_row(cur)?),
                    tag => return Err(DecodeError::UnknownTag { context: "record presence", tag }),
                };
                Ok(Response::Record { tid, row })
            }
            4 => Ok(Response::RunDone { committed: take_u64(cur)?, epochs: take_u32(cur)? }),
            5 => {
                let committed = take_u64(cur)?;
                let n = take_count(cur, 8)?;
                let mut sent = Vec::with_capacity(n);
                for _ in 0..n {
                    sent.push(take_u64(cur)?);
                }
                Ok(Response::PhaseDone { committed, sent })
            }
            6 => Ok(Response::FenceDone { epoch: take_u32(cur)?, applied: take_u64(cur)? }),
            7 => Ok(Response::Status(WireStatus {
                node: take_u32(cur)?,
                epoch: take_u32(cur)?,
                last_committed: take_u32(cur)?,
                master: take_i64(cur)?,
                generation: take_u64(cur)?,
                committed: take_u64(cur)?,
                full_replica: take_u8(cur)? != 0,
            })),
            8 => {
                let n = take_count(cur, 20)?;
                let mut log = Vec::with_capacity(n);
                for _ in 0..n {
                    log.push(WireElection::decode(cur)?);
                }
                Ok(Response::Elections(log))
            }
            9 => {
                let n = take_count(cur, 29)?;
                let mut txns = Vec::with_capacity(n);
                for _ in 0..n {
                    txns.push(WireTxn::decode(cur)?);
                }
                Ok(Response::History(txns))
            }
            10 => Ok(Response::Digest { records: take_u64(cur)?, digest: take_u64(cur)? }),
            11 => Ok(Response::Records(take_records(cur)?)),
            12 => Ok(Response::InstallDone { installed: take_u64(cur)? }),
            tag => Err(DecodeError::UnknownTag { context: "response", tag }),
        }
    }
}

// ---------------------------------------------------------------------------
// The frame-level message
// ---------------------------------------------------------------------------

const KIND_HELLO: u8 = 1;
const KIND_HELLO_ACK: u8 = 2;
const KIND_REQUEST: u8 = 3;
const KIND_RESPONSE: u8 = 4;
const KIND_REPLICATION: u8 = 5;

/// A complete protocol message (one frame).
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Connection handshake, sent by the connecting peer.
    Hello {
        /// The peer's role.
        role: Role,
        /// The peer's node id (0 for clients and admins).
        node: u32,
    },
    /// Handshake acknowledgement, sent by the server.
    HelloAck {
        /// The serving node's id.
        node: u32,
        /// Cluster size, so clients can size routing tables.
        num_nodes: u32,
    },
    /// An RPC request tagged with a correlation id (pipelining: many
    /// requests may be in flight; responses carry the same id).
    Request {
        /// Correlation id chosen by the sender.
        id: u64,
        /// The request.
        body: Request,
    },
    /// An RPC response carrying its request's correlation id.
    Response {
        /// Correlation id of the request this answers.
        id: u64,
        /// The response.
        body: Response,
    },
    /// A one-way replication batch from a peer node. The entry block is the
    /// [`encode_entries`] encoding, carried as [`Bytes`] so forwarding does
    /// not re-serialize.
    Replication {
        /// Sending node.
        from: u32,
        /// Epoch the batch belongs to.
        epoch: Epoch,
        /// Count-prefixed encoded [`LogEntry`] block.
        entries: Bytes,
    },
}

impl WireMessage {
    fn kind(&self) -> u8 {
        match self {
            WireMessage::Hello { .. } => KIND_HELLO,
            WireMessage::HelloAck { .. } => KIND_HELLO_ACK,
            WireMessage::Request { .. } => KIND_REQUEST,
            WireMessage::Response { .. } => KIND_RESPONSE,
            WireMessage::Replication { .. } => KIND_REPLICATION,
        }
    }

    /// Encodes the message as one complete frame (header + body).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        match self {
            WireMessage::Hello { role, node } => {
                body.put_u8(role.to_u8());
                body.put_u32_le(*node);
            }
            WireMessage::HelloAck { node, num_nodes } => {
                body.put_u32_le(*node);
                body.put_u32_le(*num_nodes);
            }
            WireMessage::Request { id, body: req } => {
                body.put_u64_le(*id);
                req.encode(&mut body);
            }
            WireMessage::Response { id, body: resp } => {
                body.put_u64_le(*id);
                resp.encode(&mut body);
            }
            WireMessage::Replication { from, epoch, entries } => {
                body.put_u32_le(*from);
                body.put_u32_le(*epoch);
                body.put_slice(entries);
            }
        }
        let mut frame = BytesMut::with_capacity(FRAME_HEADER_LEN + body.len());
        encode_frame_header(self.kind(), body.len(), &mut frame);
        frame.put_slice(body.as_slice());
        frame.freeze()
    }

    /// Decodes a message body, given its frame kind. Streaming readers call
    /// this after [`decode_frame_header`] told them how many bytes to read.
    pub fn decode_body(kind: u8, body: &[u8]) -> Result<WireMessage, DecodeError> {
        let mut cur = body;
        let message = match kind {
            KIND_HELLO => WireMessage::Hello {
                role: Role::from_u8(take_u8(&mut cur)?)?,
                node: take_u32(&mut cur)?,
            },
            KIND_HELLO_ACK => {
                WireMessage::HelloAck { node: take_u32(&mut cur)?, num_nodes: take_u32(&mut cur)? }
            }
            KIND_REQUEST => {
                WireMessage::Request { id: take_u64(&mut cur)?, body: Request::decode(&mut cur)? }
            }
            KIND_RESPONSE => {
                WireMessage::Response { id: take_u64(&mut cur)?, body: Response::decode(&mut cur)? }
            }
            KIND_REPLICATION => {
                let from = take_u32(&mut cur)?;
                let epoch = take_u32(&mut cur)?;
                // Validate the entry block eagerly so a malformed batch is
                // rejected at the frame boundary, but carry it as bytes so
                // the receiver can defer (or skip) materialising entries.
                decode_entries(cur)?;
                return Ok(WireMessage::Replication {
                    from,
                    epoch,
                    entries: Bytes::from(cur.to_vec()),
                });
            }
            kind => return Err(DecodeError::UnknownKind(kind)),
        };
        if !cur.is_empty() {
            return Err(DecodeError::Malformed("trailing bytes after message body"));
        }
        Ok(message)
    }

    /// Decodes one complete frame from the front of `input`, returning the
    /// message and the total number of bytes consumed.
    pub fn decode(input: &[u8]) -> Result<(WireMessage, usize), DecodeError> {
        let header = decode_frame_header(input)?;
        let total = FRAME_HEADER_LEN + header.body_len;
        if input.len() < total {
            return Err(DecodeError::Truncated { needed: total, have: input.len() });
        }
        let Some(body) = input.get(FRAME_HEADER_LEN..total) else {
            return Err(DecodeError::Truncated { needed: total, have: input.len() });
        };
        let message = Self::decode_body(header.kind, body)?;
        Ok((message, total))
    }
}

/// Convenience constructor for a replication frame from in-memory entries.
pub fn replication_frame(from: NodeId, epoch: Epoch, entries: &[LogEntry]) -> WireMessage {
    WireMessage::Replication { from: from as u32, epoch, entries: encode_entries(entries) }
}

/// A replication frame from entries already in their encoded form: the
/// per-entry bytes the engine produced at commit time are concatenated into
/// the block — nothing is re-serialized on the way to the socket.
pub fn replication_frame_encoded(
    from: NodeId,
    epoch: Epoch,
    entries: &[star_replication::EncodedEntry],
) -> WireMessage {
    WireMessage::Replication {
        from: from as u32,
        epoch,
        entries: star_replication::encode_entry_block(entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_common::FieldValue;
    use star_replication::Payload;

    fn round_trip(msg: WireMessage) {
        let frame = msg.encode();
        let (decoded, consumed) = WireMessage::decode(&frame).expect("frame decodes");
        assert_eq!(consumed, frame.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn handshake_round_trips() {
        round_trip(WireMessage::Hello { role: Role::Coordinator, node: 2 });
        round_trip(WireMessage::HelloAck { node: 2, num_nodes: 3 });
    }

    #[test]
    fn every_request_round_trips() {
        for body in [
            Request::Ping,
            Request::Get { table: 1, partition: 3, key: 42 },
            Request::Run { iterations: 4, partitioned_txns: 100, single_master_txns: 50 },
            Request::RunPhase {
                phase: WirePhase::SingleMaster,
                epoch: 7,
                txns: 25,
                baselines: vec![],
                failed: vec![],
            },
            Request::RunPhase {
                phase: WirePhase::Partitioned,
                epoch: 9,
                txns: 12,
                baselines: vec![100, 0, 88, 12],
                failed: vec![2],
            },
            Request::Fence { epoch: 7, expected: vec![0, 3, 9], failed: vec![] },
            Request::Fence { epoch: 8, expected: vec![1, 0, 0], failed: vec![1, 2] },
            Request::FetchPartition { partition: 3 },
            Request::InstallRecords {
                records: vec![WireRecord {
                    table: 0,
                    partition: 1,
                    key: 42,
                    tid: Tid::new(4, 7).raw(),
                    row: Row::new(vec![FieldValue::U64(5)]),
                }],
            },
            Request::Rejoin {
                epoch: 11,
                last_committed: 10,
                failed: vec![0],
                elections: vec![
                    WireElection { epoch: 0, master: 0, generation: 0 },
                    WireElection { epoch: 6, master: 1, generation: 1 },
                ],
                recv_base: vec![4, 0, 17],
            },
            Request::Admin(AdminQuery::ReplicaDigest),
            Request::Shutdown,
        ] {
            round_trip(WireMessage::Request { id: 99, body });
        }
    }

    #[test]
    fn every_response_round_trips() {
        let row = Row::new(vec![FieldValue::U64(1), FieldValue::Str("abc".into())]);
        for body in [
            Response::Ok,
            Response::Error("partition offline".into()),
            Response::Pong,
            Response::Record { tid: 12, row: Some(row.clone()) },
            Response::Record { tid: 0, row: None },
            Response::RunDone { committed: 512, epochs: 8 },
            Response::PhaseDone { committed: 64, sent: vec![1, 0, 2] },
            Response::FenceDone { epoch: 9, applied: 77 },
            Response::Status(WireStatus {
                node: 1,
                epoch: 5,
                last_committed: 4,
                master: -1,
                generation: 2,
                committed: 1000,
                full_replica: true,
            }),
            Response::Elections(vec![
                WireElection { epoch: 0, master: 0, generation: 0 },
                WireElection { epoch: 3, master: -1, generation: 1 },
            ]),
            Response::History(vec![WireTxn {
                epoch: 2,
                phase: WirePhase::Partitioned,
                executor: 1,
                tid: Tid::new(2, 5).raw(),
                reads: vec![(0, 1, 7, 0)],
                writes: vec![(0, 1, 7, row.clone())],
            }]),
            Response::Digest { records: 40, digest: 0xdead_beef },
            Response::Records(vec![
                WireRecord {
                    table: 0,
                    partition: 2,
                    key: 7,
                    tid: Tid::new(3, 1).raw(),
                    row: row.clone(),
                },
                WireRecord { table: 1, partition: 0, key: 0, tid: 0, row: Row::new(vec![]) },
            ]),
            Response::InstallDone { installed: 96 },
        ] {
            round_trip(WireMessage::Response { id: 7, body });
        }
    }

    #[test]
    fn replication_frame_round_trips_entries() {
        let row = Row::new(vec![FieldValue::I64(-3)]);
        let entries = vec![LogEntry {
            table: 0,
            partition: 1,
            key: 9,
            tid: Tid::new(1, 1),
            payload: Payload::Value(row),
        }];
        let msg = replication_frame(2, 1, &entries);
        let frame = msg.encode();
        let (decoded, _) = WireMessage::decode(&frame).expect("frame decodes");
        let WireMessage::Replication { from, epoch, entries: block } = decoded else {
            panic!("wrong kind");
        };
        assert_eq!((from, epoch), (2, 1));
        assert_eq!(decode_entries(&block).expect("entries decode"), entries);
    }

    #[test]
    fn election_conversion_round_trips() {
        for e in [
            MasterElection { epoch: 0, master: Some(0), generation: 0 },
            MasterElection { epoch: 5, master: None, generation: 3 },
        ] {
            assert_eq!(WireElection::from_election(&e).to_election(), e);
        }
    }

    #[test]
    fn committed_txn_conversion_round_trips() {
        let txn = CommittedTxn {
            epoch: 3,
            phase: ExecutionPhase::SingleMaster,
            executor: 1 << 32,
            tid: Tid::new(3, 17),
            reads: vec![RecordedRead { table: 1, partition: 0, key: 5, tid: Tid::ZERO }],
            writes: vec![RecordedWrite {
                table: 1,
                partition: 0,
                key: 5,
                row: Row::new(vec![FieldValue::U64(9)]),
            }],
        };
        assert_eq!(WireTxn::from_committed(&txn).to_committed(), txn);
    }

    #[test]
    fn canonical_history_encoding_is_deterministic() {
        let txn = CommittedTxn {
            epoch: 1,
            phase: ExecutionPhase::Partitioned,
            executor: 0,
            tid: Tid::new(1, 1),
            reads: vec![],
            writes: vec![],
        };
        assert_eq!(encode_history(std::slice::from_ref(&txn)), encode_history(&[txn]));
        let log = vec![MasterElection { epoch: 0, master: Some(0), generation: 0 }];
        assert_eq!(encode_elections(&log), encode_elections(&log));
    }

    #[test]
    fn truncated_body_is_a_typed_error() {
        let frame = WireMessage::Request { id: 1, body: Request::Ping }.encode();
        for cut in 0..frame.len() {
            let err = WireMessage::decode(&frame[..cut]).expect_err("truncation detected");
            assert!(matches!(err, DecodeError::Truncated { .. }), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let frame = WireMessage::Request { id: 1, body: Request::Ping }.encode();
        let mut raw = frame.to_vec();
        // Grow the declared body length without providing a valid body.
        raw.push(0xff);
        let len = (raw.len() - FRAME_HEADER_LEN) as u32;
        raw[8..12].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            WireMessage::decode(&raw),
            Err(DecodeError::Malformed("trailing bytes after message body"))
        );
    }

    #[test]
    fn unknown_kind_is_rejected_after_length() {
        let mut buf = BytesMut::new();
        encode_frame_header(200, 0, &mut buf);
        assert_eq!(WireMessage::decode(buf.as_slice()), Err(DecodeError::UnknownKind(200)));
    }

    #[test]
    fn absurd_count_prefix_is_rejected_without_allocation() {
        // A Fence whose expected-count claims u32::MAX entries.
        let mut body = BytesMut::new();
        body.put_u64_le(1); // correlation id
        body.put_u8(4); // Fence tag
        body.put_u32_le(9); // epoch
        body.put_u32_le(u32::MAX); // count
        let mut frame = BytesMut::new();
        encode_frame_header(KIND_REQUEST, body.len(), &mut frame);
        frame.put_slice(body.as_slice());
        assert_eq!(
            WireMessage::decode(frame.as_slice()),
            Err(DecodeError::Malformed("count prefix exceeds remaining input"))
        );
    }
}
