//! The STAR wire protocol: length-prefixed binary frames for the real TCP
//! deployment (`star-serverd`, `star-client`, `star-admin`).
//!
//! The protocol is deliberately small and fully deterministic: every value
//! has exactly one encoding, so the transport-parity harness can assert that
//! a wire-served run and an in-memory simulated run produced *byte-identical*
//! committed histories and election logs by comparing [`encode_history`] /
//! [`encode_elections`] outputs directly.
//!
//! Layering:
//!
//! * [`frame`] — the fixed 12-byte header (`magic, version, kind, flags,
//!   body length`) every message rides behind;
//! * [`message`] — the message bodies: handshakes, correlation-id-tagged
//!   requests/responses, and zero-copy replication batches;
//! * [`stream`] — [`FrameBuffer`], incremental frame reassembly for
//!   non-blocking readers (server connection loops, the wire-chaos proxy);
//! * [`error`] — typed [`DecodeError`]s. Decoding arbitrary bytes never
//!   panics; `star-lint` keeps this crate's `src/` in panic-freedom scope.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod frame;
pub mod io;
pub mod message;
pub mod stream;

pub use error::DecodeError;
pub use frame::{
    decode_frame_header, encode_frame_header, FrameHeader, FRAME_HEADER_LEN, FRAME_MAGIC,
    MAX_BODY_LEN, PROTOCOL_VERSION,
};
pub use io::{read_message, write_message};
pub use message::{
    decode_entries, encode_elections, encode_entries, encode_history, replication_frame,
    replication_frame_encoded, AdminQuery, Request, Response, Role, WireElection, WireMessage,
    WirePhase, WireRecord, WireStatus, WireTxn,
};
pub use stream::FrameBuffer;
