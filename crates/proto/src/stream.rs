//! Incremental frame assembly for non-blocking byte streams.
//!
//! A [`FrameBuffer`] accumulates whatever bytes a socket happens to hand
//! over — whole frames, several frames at once, or one byte at a time — and
//! yields complete frames as they become available. `star-serverd`'s
//! connection loops and the wire-chaos interposing proxy both read through
//! it, so frame-boundary handling exists exactly once; the fuzz harness
//! dribbles every generated frame through it byte by byte and asserts the
//! decode is identical to the all-at-once path.

use crate::error::DecodeError;
use crate::frame::{decode_frame_header, FRAME_HEADER_LEN};
use crate::message::WireMessage;
use bytes::Bytes;

/// Reassembles frames from an arbitrarily chunked byte stream.
///
/// Feed bytes with [`push`](Self::push), then drain completed frames with
/// [`next_frame`](Self::next_frame) (raw bytes, header validated — what a
/// forwarding proxy wants) or [`next_message`](Self::next_message) (fully
/// decoded). A malformed header or body is a typed error; the buffer is not
/// self-resynchronising, so callers should drop the connection on error,
/// exactly as the blocking reader does.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer { buf: Vec::new() }
    }

    /// Appends freshly read bytes to the buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered bytes not yet consumed by a completed frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer holds a partial frame (some bytes, but not enough
    /// to complete one). A connection that reaches EOF in this state died
    /// mid-frame.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Total size of the frame at the front of the buffer, if a full header
    /// is available and valid: `Ok(None)` means "feed me more bytes".
    fn frame_len(&self) -> Result<Option<usize>, DecodeError> {
        if self.buf.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let header = decode_frame_header(&self.buf)?;
        Ok(Some(FRAME_HEADER_LEN + header.body_len))
    }

    /// Removes and returns the next complete frame as raw bytes (header
    /// included). Only the header is validated — the body may still fail
    /// [`WireMessage::decode_body`]; forwarding proxies deliberately skip
    /// that cost. Returns `Ok(None)` until a full frame has been pushed.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, DecodeError> {
        let Some(total) = self.frame_len()? else {
            return Ok(None);
        };
        if self.buf.len() < total {
            return Ok(None);
        }
        let rest = self.buf.split_off(total);
        let frame = std::mem::replace(&mut self.buf, rest);
        Ok(Some(Bytes::from(frame)))
    }

    /// Removes and decodes the next complete frame. Returns `Ok(None)` until
    /// a full frame has been pushed.
    pub fn next_message(&mut self) -> Result<Option<WireMessage>, DecodeError> {
        let Some(total) = self.frame_len()? else {
            return Ok(None);
        };
        if self.buf.len() < total {
            return Ok(None);
        }
        let (message, consumed) = WireMessage::decode(&self.buf)?;
        debug_assert_eq!(consumed, total);
        self.buf.drain(..consumed);
        Ok(Some(message))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Request, WireMessage};

    fn ping(id: u64) -> WireMessage {
        WireMessage::Request { id, body: Request::Ping }
    }

    #[test]
    fn whole_frames_come_back_out() {
        let mut fb = FrameBuffer::new();
        let frame = ping(1).encode();
        fb.push(&frame);
        assert_eq!(fb.next_message().unwrap(), Some(ping(1)));
        assert_eq!(fb.next_message().unwrap(), None);
        assert!(!fb.has_partial());
    }

    #[test]
    fn multiple_frames_in_one_push_are_split() {
        let mut fb = FrameBuffer::new();
        let mut bytes = ping(1).encode().to_vec();
        bytes.extend_from_slice(&ping(2).encode());
        fb.push(&bytes);
        assert_eq!(fb.next_message().unwrap(), Some(ping(1)));
        assert_eq!(fb.next_message().unwrap(), Some(ping(2)));
        assert_eq!(fb.next_message().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_dribble_reassembles() {
        let mut fb = FrameBuffer::new();
        let frame = ping(7).encode();
        for (i, byte) in frame.iter().enumerate() {
            fb.push(std::slice::from_ref(byte));
            let got = fb.next_message().unwrap();
            if i + 1 < frame.len() {
                assert_eq!(got, None, "no message before byte {}", frame.len());
                assert!(fb.has_partial());
            } else {
                assert_eq!(got, Some(ping(7)));
            }
        }
    }

    #[test]
    fn raw_frames_preserve_bytes_exactly() {
        let mut fb = FrameBuffer::new();
        let frame = ping(3).encode();
        fb.push(&frame);
        assert_eq!(fb.next_frame().unwrap(), Some(frame));
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let mut fb = FrameBuffer::new();
        let mut raw = ping(1).encode().to_vec();
        raw[0] = b'X';
        fb.push(&raw);
        assert!(matches!(fb.next_message(), Err(DecodeError::BadMagic(_))));
    }
}
