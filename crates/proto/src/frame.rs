//! The frame layer: a fixed 12-byte header in front of every message.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "STAR"
//! 4       2     protocol version, little-endian (currently 2)
//! 6       1     frame kind (which [`crate::WireMessage`] variant follows)
//! 7       1     flags (reserved, must be 0)
//! 8       4     body length, little-endian
//! 12      len   body
//! ```
//!
//! The header is fixed-size so a streaming reader can read exactly
//! [`FRAME_HEADER_LEN`] bytes, validate them, then read exactly `body_len`
//! more — no scanning, no resynchronisation. The body length is bounded by
//! [`MAX_BODY_LEN`] before it is trusted as a buffer size.

use crate::error::DecodeError;
use bytes::{Buf, BufMut, BytesMut};

/// The four magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"STAR";

/// The protocol version this build speaks. Version 2 added the
/// failure-aware phase/fence fields and the recovery frames
/// (`FetchPartition` / `InstallRecords` / `Rejoin`).
pub const PROTOCOL_VERSION: u16 = 2;

/// Size of the fixed frame header.
pub const FRAME_HEADER_LEN: usize = 12;

/// Upper bound on a frame body. A replication batch is at most a few
/// thousand log entries; 32 MiB leaves two orders of magnitude of headroom
/// while keeping a corrupt length prefix from asking the receiver to buffer
/// gigabytes.
pub const MAX_BODY_LEN: usize = 32 << 20;

/// A validated frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version of the frame.
    pub version: u16,
    /// Frame kind (dispatches to a [`crate::WireMessage`] variant).
    pub kind: u8,
    /// Reserved flags byte (always 0 in version 1).
    pub flags: u8,
    /// Length of the body following the header.
    pub body_len: usize,
}

/// Decodes and validates a frame header from the first
/// [`FRAME_HEADER_LEN`] bytes of `buf`.
///
/// Validation order: length, magic, version, body bound. The kind byte is
/// *not* validated here — a streaming reader must know how many bytes to
/// consume even for an unknown kind, so kind dispatch happens in
/// [`crate::WireMessage::decode_body`].
pub fn decode_frame_header(buf: &[u8]) -> Result<FrameHeader, DecodeError> {
    let mut cur = buf;
    if cur.remaining() < FRAME_HEADER_LEN {
        return Err(DecodeError::Truncated { needed: FRAME_HEADER_LEN, have: cur.remaining() });
    }
    let mut magic = [0u8; 4];
    cur.copy_to_slice(&mut magic);
    if magic != FRAME_MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = cur.get_u16_le();
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let kind = cur.get_u8();
    let flags = cur.get_u8();
    let body_len = cur.get_u32_le() as usize;
    if body_len > MAX_BODY_LEN {
        return Err(DecodeError::Oversized { len: body_len, max: MAX_BODY_LEN });
    }
    Ok(FrameHeader { version, kind, flags, body_len })
}

/// Appends a frame header for a `kind` frame with a `body_len`-byte body.
pub fn encode_frame_header(kind: u8, body_len: usize, buf: &mut BytesMut) {
    buf.put_slice(&FRAME_MAGIC);
    buf.put_u16_le(PROTOCOL_VERSION);
    buf.put_u8(kind);
    buf.put_u8(0);
    buf.put_u32_le(body_len as u32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let mut buf = BytesMut::new();
        encode_frame_header(3, 17, &mut buf);
        assert_eq!(buf.len(), FRAME_HEADER_LEN);
        let header = decode_frame_header(buf.as_slice()).unwrap();
        assert_eq!(
            header,
            FrameHeader { version: PROTOCOL_VERSION, kind: 3, flags: 0, body_len: 17 }
        );
    }

    #[test]
    fn short_input_is_truncated() {
        assert_eq!(
            decode_frame_header(b"STAR"),
            Err(DecodeError::Truncated { needed: FRAME_HEADER_LEN, have: 4 })
        );
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut buf = BytesMut::new();
        encode_frame_header(1, 0, &mut buf);
        let mut raw = buf.to_vec();
        raw[0] = b'X';
        assert_eq!(decode_frame_header(&raw), Err(DecodeError::BadMagic(*b"XTAR")));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = BytesMut::new();
        encode_frame_header(1, 0, &mut buf);
        let mut raw = buf.to_vec();
        raw[4] = 9;
        assert_eq!(decode_frame_header(&raw), Err(DecodeError::UnsupportedVersion(9)));
    }

    #[test]
    fn oversized_body_is_rejected() {
        let mut buf = BytesMut::new();
        encode_frame_header(1, 0, &mut buf);
        let mut raw = buf.to_vec();
        raw[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame_header(&raw),
            Err(DecodeError::Oversized { len: u32::MAX as usize, max: MAX_BODY_LEN })
        );
    }
}
