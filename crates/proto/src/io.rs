//! Blocking frame I/O over any byte stream.
//!
//! `star-serverd` and `star-client` both speak frames over [`TcpStream`]s;
//! this module is the one place that turns a byte stream into messages. The
//! reader trusts nothing: the header is validated before `body_len` is used
//! as a read size, and every decode failure surfaces as a typed
//! [`DecodeError`] wrapped in [`io::ErrorKind::InvalidData`].
//!
//! [`TcpStream`]: std::net::TcpStream

use crate::frame::{decode_frame_header, FRAME_HEADER_LEN};
use crate::message::WireMessage;
use std::io::{self, Read, Write};

/// Writes one complete frame to `writer` (no implicit flush; callers batch
/// pipelined frames and flush once).
pub fn write_message<W: Write>(writer: &mut W, message: &WireMessage) -> io::Result<()> {
    writer.write_all(&message.encode())
}

/// Reads exactly one frame from `reader` and decodes it.
///
/// Errors pass through from the underlying reader (including timeouts on
/// sockets with a read deadline, which callers use to poll a shutdown flag);
/// malformed frames become [`io::ErrorKind::InvalidData`] carrying the
/// [`DecodeError`](crate::DecodeError) as their source.
pub fn read_message<R: Read>(reader: &mut R) -> io::Result<WireMessage> {
    let mut header_raw = [0u8; FRAME_HEADER_LEN];
    reader.read_exact(&mut header_raw)?;
    let header = decode_frame_header(&header_raw)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut body = vec![0u8; header.body_len];
    reader.read_exact(&mut body)?;
    WireMessage::decode_body(header.kind, &body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Request, WireMessage};

    #[test]
    fn messages_round_trip_through_a_stream() {
        let mut buf: Vec<u8> = Vec::new();
        let a = WireMessage::Request { id: 1, body: Request::Ping };
        let b = WireMessage::Request { id: 2, body: Request::Shutdown };
        write_message(&mut buf, &a).unwrap();
        write_message(&mut buf, &b).unwrap();
        let mut cursor = buf.as_slice();
        assert_eq!(read_message(&mut cursor).unwrap(), a);
        assert_eq!(read_message(&mut cursor).unwrap(), b);
        assert!(cursor.is_empty());
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, &WireMessage::Request { id: 1, body: Request::Ping }).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = buf.as_slice();
        assert!(read_message(&mut cursor).is_err());
    }

    #[test]
    fn garbage_header_is_invalid_data() {
        let raw = [0u8; FRAME_HEADER_LEN];
        let mut cursor = raw.as_slice();
        let err = read_message(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
