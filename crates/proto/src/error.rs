//! Typed decode errors.
//!
//! Every way a frame can be malformed maps to a distinct variant, and the
//! decoder guarantees it returns one of these instead of panicking — the
//! wire is attacker-adjacent input, and `star-lint` keeps the whole crate in
//! panic-freedom scope to enforce it statically.

use std::fmt;

/// Why a frame (or frame body) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a complete value: `needed` more bytes were
    /// required but only `have` remained.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The frame does not start with the `STAR` magic.
    BadMagic([u8; 4]),
    /// The frame's protocol version is not one this peer speaks.
    UnsupportedVersion(u16),
    /// The frame header's kind byte names no known message.
    UnknownKind(u8),
    /// A tag byte inside a frame body names no known variant.
    UnknownTag {
        /// What was being decoded when the tag appeared.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The frame's declared body length exceeds the protocol maximum (a
    /// corrupt length prefix would otherwise ask the receiver to buffer
    /// gigabytes).
    Oversized {
        /// Declared body length.
        len: usize,
        /// The protocol's maximum body length.
        max: usize,
    },
    /// The body was structurally invalid in some other way (bad UTF-8, a
    /// count prefix pointing past the input, a nested entry that failed to
    /// parse).
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} more byte(s), have {have}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag {tag}")
            }
            DecodeError::Oversized { len, max } => {
                write!(f, "frame body of {len} byte(s) exceeds the {max}-byte maximum")
            }
            DecodeError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}
