//! End-to-end fault-tolerance and durability tests: failure detection, the
//! four recovery scenarios, node catch-up, and recovery from checkpoint +
//! WAL.

use star::prelude::*;
use star::replication::checkpoint::Checkpoint;
use star::replication::recovery::recover_from_checkpoint_and_logs;
use star::replication::{LogEntry, Payload};
use star::storage::{DatabaseBuilder, TableSpec};
use std::sync::Arc;
use std::time::Duration;

fn cluster(nodes: usize, full: usize) -> ClusterConfig {
    ClusterConfig::builder()
        .nodes(nodes)
        .full_replicas(full)
        .partitions(nodes * 2)
        .workers_per_node(2)
        // Every partition keeps a partial backup beyond the full copies, so
        // the Figure-7 scenarios can lose a single partial replica without
        // also losing partial coverage.
        .replication_factor(full + 2)
        .iteration(Duration::from_millis(5))
        .network_latency(Duration::from_micros(20))
        .build()
        .unwrap()
}

fn ycsb(partitions: usize) -> Arc<YcsbWorkload> {
    Arc::new(YcsbWorkload::new(YcsbConfig {
        partitions,
        rows_per_partition: 200,
        cross_partition_fraction: 0.2,
        ..Default::default()
    }))
}

#[test]
fn case1_partial_replica_failure_keeps_the_system_available() {
    let config = cluster(4, 1);
    let mut engine = StarEngine::new(config.clone(), ycsb(config.partitions)).unwrap();
    engine.run_for(Duration::from_millis(30));
    engine.inject_failure(3);
    engine.run_iteration();
    assert_eq!(engine.failure_case().unwrap(), FailureCase::FullAndPartialRemain);
    assert!(engine.failure_case().unwrap().phase_switching_available());
    let report = engine.run_for(Duration::from_millis(30));
    assert!(report.counters.committed > 0);
}

#[test]
fn case2_losing_every_full_replica_disables_phase_switching() {
    let config = cluster(4, 1);
    let mut engine = StarEngine::new(config.clone(), ycsb(config.partitions)).unwrap();
    engine.run_for(Duration::from_millis(20));
    engine.inject_failure(0);
    engine.run_iteration();
    assert_eq!(engine.failure_case().unwrap(), FailureCase::OnlyPartialRemains);
    assert!(!engine.failure_case().unwrap().phase_switching_available());
    assert_eq!(engine.current_master(), None);
    // Single-partition traffic still commits on the surviving partial
    // replicas (the engine's degraded mode).
    let report = engine.run_for(Duration::from_millis(30));
    assert!(report.counters.committed > 0);
}

#[test]
fn case3_losing_partial_coverage_re_masters_onto_the_full_replica() {
    let config = cluster(4, 2);
    let mut engine = StarEngine::new(config.clone(), ycsb(config.partitions)).unwrap();
    engine.run_for(Duration::from_millis(20));
    // Fail every partial replica.
    engine.inject_failure(2);
    engine.inject_failure(3);
    engine.run_iteration();
    assert_eq!(engine.failure_case().unwrap(), FailureCase::OnlyFullRemains);
    assert!(engine.failure_case().unwrap().phase_switching_available());
    // Every partition must now be re-mastered onto a full replica.
    for p in 0..config.partitions {
        let primary = engine.effective_primary(p).unwrap();
        assert!(primary < 2, "partition {p} re-mastered to {primary}");
    }
    let report = engine.run_for(Duration::from_millis(30));
    assert!(report.counters.committed > 0);
}

#[test]
fn case4_losing_everything_stops_the_system() {
    let config = cluster(4, 1);
    let mut engine = StarEngine::new(config.clone(), ycsb(config.partitions)).unwrap();
    engine.run_for(Duration::from_millis(20));
    for node in 0..3 {
        engine.inject_failure(node);
    }
    engine.run_iteration();
    assert_eq!(engine.failure_case().unwrap(), FailureCase::NothingRemains);
    assert!(!engine.failure_case().unwrap().available());
}

#[test]
fn recovered_node_catches_up_and_replicas_reconverge() {
    let config = cluster(4, 1);
    let mut engine = StarEngine::new(config.clone(), ycsb(config.partitions)).unwrap();
    engine.run_for(Duration::from_millis(30));
    engine.inject_failure(2);
    engine.run_iteration();
    // Progress while the node is down, so it has something to catch up on.
    engine.run_for(Duration::from_millis(40));
    let copied = engine.recover_node(2).unwrap();
    assert!(copied > 0);
    engine.run_for(Duration::from_millis(30));
    engine.verify_replica_consistency().unwrap();
}

#[test]
fn checkpoint_plus_wal_rebuilds_a_lost_replica() {
    // The Case-4 durability path: every replica is lost, the node reloads its
    // checkpoint and replays the logs written since.
    let db = DatabaseBuilder::new(2).table(TableSpec::new("t")).build();
    for k in 0..50u64 {
        db.insert(0, (k % 2) as usize, k, star::common::row::row([FieldValue::U64(k)])).unwrap();
    }
    // Epoch 1 commits some writes, then a checkpoint is taken, then epoch 2
    // commits more writes into per-worker logs.
    for k in 0..50u64 {
        db.apply_value_write(
            0,
            (k % 2) as usize,
            k,
            star::common::row::row([FieldValue::U64(k + 1000)]),
            Tid::new(1, k + 1),
        )
        .unwrap();
    }
    let checkpoint = Checkpoint::capture(&db, 1);
    let logs: Vec<Vec<LogEntry>> = (0..2)
        .map(|worker| {
            (0..25u64)
                .map(|i| {
                    let k = worker * 25 + i;
                    LogEntry {
                        table: 0,
                        partition: (k % 2) as usize,
                        key: k,
                        tid: Tid::new(2, k + 1),
                        payload: Payload::Value(star::common::row::row([FieldValue::U64(
                            k + 2000,
                        )])),
                    }
                })
                .collect()
        })
        .collect();

    let recovered = DatabaseBuilder::new(2).table(TableSpec::new("t")).build();
    let stats = recover_from_checkpoint_and_logs(&recovered, &checkpoint, &logs).unwrap();
    assert_eq!(stats.checkpoint_records, 50);
    assert_eq!(stats.log_entries_replayed, 50);
    for k in 0..50u64 {
        let rec = recovered.get(0, (k % 2) as usize, k).unwrap();
        assert_eq!(rec.read().row, star::common::row::row([FieldValue::U64(k + 2000)]));
        assert_eq!(rec.tid().epoch(), 2);
    }
}

#[test]
fn wal_written_by_the_engine_is_replayable() {
    // Run the engine with disk logging enabled, then parse one node's WAL and
    // check every entry decodes and carries a valid epoch.
    let config = cluster(2, 1).to_builder().disk_logging(true).build().unwrap();
    let mut engine = StarEngine::new(config, ycsb(4)).unwrap();
    let report = engine.run_for(Duration::from_millis(40));
    assert!(report.counters.wal_bytes > 0);
    let wal_path = &engine.wal_paths()[0];
    let reader = star::replication::WalReader::open(wal_path).unwrap();
    let entries = reader.entries().unwrap();
    assert!(!entries.is_empty());
    assert!(entries.iter().all(|e| e.tid.epoch() >= 1));
    assert!(entries.iter().all(|e| matches!(e.payload, Payload::Value(_))));
}
