//! Property-based tests of the core invariants: TID ordering, the Thomas
//! write rule, the replication codec, the analytical model and the phase
//! planner.

use proptest::prelude::*;
use star::common::row::row;
use star::common::stats::LatencyHistogram;
use star::prelude::*;
use star::replication::{LogEntry, Payload};
use star::storage::Record;
use std::time::Duration;

fn arb_field() -> impl Strategy<Value = FieldValue> {
    prop_oneof![
        any::<u64>().prop_map(FieldValue::U64),
        any::<i64>().prop_map(FieldValue::I64),
        (-1e12f64..1e12).prop_map(FieldValue::F64),
        "[a-zA-Z0-9]{0,40}".prop_map(FieldValue::Str),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(FieldValue::Bytes),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    proptest::collection::vec(arb_field(), 1..8).prop_map(Row::new)
}

proptest! {
    #[test]
    fn tid_roundtrip(epoch in 0u32..1_000_000, seq in 0u64..(1u64 << 40) - 1) {
        let tid = Tid::new(epoch, seq);
        prop_assert_eq!(tid.epoch(), epoch);
        prop_assert_eq!(tid.sequence(), seq);
        prop_assert_eq!(Tid::from_raw(tid.raw()), tid);
    }

    #[test]
    fn tid_ordering_is_epoch_major(
        e1 in 0u32..10_000, s1 in 0u64..1_000_000,
        e2 in 0u32..10_000, s2 in 0u64..1_000_000,
    ) {
        let a = Tid::new(e1, s1);
        let b = Tid::new(e2, s2);
        if e1 != e2 {
            prop_assert_eq!(a < b, e1 < e2);
        } else {
            prop_assert_eq!(a < b, s1 < s2);
        }
    }

    #[test]
    fn thomas_write_rule_converges_to_max_tid_in_any_order(
        mut writes in proptest::collection::vec((1u64..100_000, arb_row()), 1..20)
    ) {
        // Apply the same set of (tid, row) writes in two different orders;
        // both replicas must end up with the value of the largest TID.
        let rec_a = Record::new(row([FieldValue::U64(0)]));
        let rec_b = Record::new(row([FieldValue::U64(0)]));
        for (seq, r) in &writes {
            rec_a.apply_value_thomas(r.clone(), Tid::new(1, *seq));
        }
        writes.reverse();
        for (seq, r) in &writes {
            rec_b.apply_value_thomas(r.clone(), Tid::new(1, *seq));
        }
        prop_assert_eq!(rec_a.tid(), rec_b.tid());
        prop_assert_eq!(rec_a.read().row, rec_b.read().row);
        let max_seq = writes.iter().map(|(s, _)| *s).max().unwrap();
        prop_assert_eq!(rec_a.tid(), Tid::new(1, max_seq));
    }

    #[test]
    fn log_entry_codec_roundtrips(table in 0u32..16, partition in 0usize..64,
                                  key in any::<u64>(), seq in 1u64..1_000_000,
                                  r in arb_row()) {
        let entry = LogEntry {
            table,
            partition,
            key,
            tid: Tid::new(3, seq),
            payload: Payload::Value(r),
        };
        let mut bytes = entry.encode_to_bytes();
        let decoded = LogEntry::decode(&mut bytes).unwrap();
        prop_assert_eq!(decoded, entry);
    }

    #[test]
    fn operations_and_value_replication_agree(
        base in arb_row(),
        delta in -1_000i64..1_000,
    ) {
        // Applying an operation locally and shipping the resulting row must
        // agree with shipping the operation and applying it remotely.
        let mut local = base.clone();
        let mut remote = base.clone();
        if let Some(FieldValue::I64(_)) = local.field(0) {
            let op = Operation::AddI64 { field: 0, delta };
            op.apply(&mut local).unwrap();
            op.apply(&mut remote).unwrap();
            prop_assert_eq!(local, remote);
        }
    }

    #[test]
    fn analytical_model_speedup_is_monotone_in_nodes(p in 0.0f64..1.0, k in 1.0f64..32.0) {
        let model = AnalyticalModel::new(p, k);
        let mut last = 0.0;
        for n in 1..=16 {
            let s = model.speedup_over_single_node(n);
            prop_assert!(s + 1e-12 >= last, "speedup must not decrease with more nodes");
            prop_assert!(s <= n as f64 + 1e-12, "speedup can never exceed linear");
            last = s;
        }
    }

    #[test]
    fn phase_plan_split_always_sums_to_iteration(
        p in 0.0f64..1.0,
        tp in 1_000.0f64..1_000_000.0,
        ts in 1_000.0f64..1_000_000.0,
    ) {
        let mut plan = PhasePlan::new(p);
        plan.observe_partitioned(tp as u64, Duration::from_secs(1));
        plan.observe_single_master(ts as u64, Duration::from_secs(1));
        let e = Duration::from_millis(10);
        let (tau_p, tau_s) = plan.split(e);
        let total = tau_p + tau_s;
        let diff = if total > e { total - e } else { e - total };
        prop_assert!(diff <= Duration::from_micros(2), "τp + τs must equal e (diff {diff:?})");
    }

    #[test]
    fn latency_histogram_percentiles_are_monotone(
        samples in proptest::collection::vec(1u64..5_000_000, 1..200)
    ) {
        let mut h = LatencyHistogram::new();
        for us in &samples {
            h.record(Duration::from_micros(*us));
        }
        prop_assert!(h.percentile(10.0) <= h.percentile(50.0));
        prop_assert!(h.percentile(50.0) <= h.percentile(99.0));
        prop_assert!(h.percentile(99.0) <= h.max() + Duration::from_micros(1));
        prop_assert_eq!(h.count(), samples.len() as u64);
    }
}

#[test]
fn record_lock_bit_does_not_corrupt_tid() {
    // Non-proptest companion: locking and unlocking must never change the TID.
    let rec = Record::new(row([FieldValue::U64(0)]));
    rec.apply_value_thomas(row([FieldValue::U64(1)]), Tid::new(5, 77));
    let before = rec.tid();
    assert!(rec.try_lock());
    assert_eq!(rec.meta().tid, before);
    rec.unlock();
    assert_eq!(rec.tid(), before);
}
