//! Randomized-property tests of the core invariants: TID ordering, the
//! Thomas write rule, the replication codec, the analytical model and the
//! phase planner.
//!
//! Each property is checked over a few hundred cases drawn from a
//! deterministically seeded generator (`StdRng::seed_from_u64`), so runs are
//! reproducible and CI-stable while still exploring a wide input space.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use star::common::rng::astring;
use star::common::row::row;
use star::common::stats::LatencyHistogram;
use star::prelude::*;
use star::replication::{LogEntry, Payload};
use star::storage::Record;
use std::time::Duration;

const CASES: usize = 300;

fn arb_field(rng: &mut StdRng) -> FieldValue {
    match rng.gen_range(0..5u8) {
        0 => FieldValue::U64(rng.gen()),
        1 => FieldValue::I64(rng.gen()),
        2 => FieldValue::F64(rng.gen_range(-1e12..1e12)),
        3 => {
            let len = rng.gen_range(0..=40usize);
            FieldValue::Str(if len == 0 { String::new() } else { astring(rng, len, len) })
        }
        _ => {
            let len = rng.gen_range(0..40usize);
            let mut bytes = vec![0u8; len];
            rng.fill(&mut bytes);
            FieldValue::Bytes(bytes)
        }
    }
}

fn arb_row(rng: &mut StdRng) -> Row {
    let fields = rng.gen_range(1..8usize);
    Row::new((0..fields).map(|_| arb_field(rng)).collect())
}

#[test]
fn tid_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xC0_0001);
    for _ in 0..CASES {
        let epoch = rng.gen_range(0..1_000_000u32);
        let seq = rng.gen_range(0..(1u64 << 40) - 1);
        let tid = Tid::new(epoch, seq);
        assert_eq!(tid.epoch(), epoch);
        assert_eq!(tid.sequence(), seq);
        assert_eq!(Tid::from_raw(tid.raw()), tid);
    }
}

#[test]
fn tid_ordering_is_epoch_major() {
    let mut rng = StdRng::seed_from_u64(0xC0_0002);
    for _ in 0..CASES {
        let (e1, e2) = (rng.gen_range(0..10_000u32), rng.gen_range(0..10_000u32));
        let (s1, s2) = (rng.gen_range(0..1_000_000u64), rng.gen_range(0..1_000_000u64));
        let a = Tid::new(e1, s1);
        let b = Tid::new(e2, s2);
        if e1 != e2 {
            assert_eq!(a < b, e1 < e2);
        } else {
            assert_eq!(a < b, s1 < s2);
        }
    }
}

#[test]
fn thomas_write_rule_converges_to_max_tid_in_any_order() {
    let mut rng = StdRng::seed_from_u64(0xC0_0003);
    for _ in 0..100 {
        // Apply the same set of (tid, row) writes in two different orders;
        // both replicas must end up with the value of the largest TID.
        let count = rng.gen_range(1..20usize);
        let mut writes: Vec<(u64, Row)> =
            (0..count).map(|_| (rng.gen_range(1..100_000u64), arb_row(&mut rng))).collect();
        let rec_a = Record::new(row([FieldValue::U64(0)]));
        let rec_b = Record::new(row([FieldValue::U64(0)]));
        for (seq, r) in &writes {
            rec_a.apply_value_thomas(r.clone(), Tid::new(1, *seq));
        }
        writes.reverse();
        for (seq, r) in &writes {
            rec_b.apply_value_thomas(r.clone(), Tid::new(1, *seq));
        }
        assert_eq!(rec_a.tid(), rec_b.tid());
        assert_eq!(rec_a.read().row, rec_b.read().row);
        let max_seq = writes.iter().map(|(s, _)| *s).max().unwrap();
        assert_eq!(rec_a.tid(), Tid::new(1, max_seq));
    }
}

#[test]
fn log_entry_codec_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xC0_0004);
    for _ in 0..CASES {
        let entry = LogEntry {
            table: rng.gen_range(0..16u32),
            partition: rng.gen_range(0..64usize),
            key: rng.gen(),
            tid: Tid::new(3, rng.gen_range(1..1_000_000u64)),
            payload: Payload::Value(arb_row(&mut rng)),
        };
        let mut bytes = entry.encode_to_bytes();
        let decoded = LogEntry::decode(&mut bytes).unwrap();
        assert_eq!(decoded, entry);
    }
}

#[test]
fn operations_and_value_replication_agree() {
    let mut rng = StdRng::seed_from_u64(0xC0_0005);
    for _ in 0..CASES {
        // Applying an operation locally and shipping the resulting row must
        // agree with shipping the operation and applying it remotely.
        let base = arb_row(&mut rng);
        let delta = rng.gen_range(-1_000i64..1_000);
        let mut local = base.clone();
        let mut remote = base.clone();
        if let Some(FieldValue::I64(_)) = local.field(0) {
            let op = Operation::AddI64 { field: 0, delta };
            op.apply(&mut local).unwrap();
            op.apply(&mut remote).unwrap();
            assert_eq!(local, remote);
        }
    }
}

#[test]
fn analytical_model_speedup_is_monotone_in_nodes() {
    let mut rng = StdRng::seed_from_u64(0xC0_0006);
    for _ in 0..CASES {
        let p = rng.gen_range(0.0..1.0f64);
        let k = rng.gen_range(1.0..32.0f64);
        let model = AnalyticalModel::new(p, k);
        let mut last = 0.0;
        for n in 1..=16 {
            let s = model.speedup_over_single_node(n);
            assert!(s + 1e-12 >= last, "speedup must not decrease with more nodes");
            assert!(s <= n as f64 + 1e-12, "speedup can never exceed linear");
            last = s;
        }
    }
}

#[test]
fn phase_plan_split_always_sums_to_iteration() {
    let mut rng = StdRng::seed_from_u64(0xC0_0007);
    for _ in 0..CASES {
        let p = rng.gen_range(0.0..1.0f64);
        let tp = rng.gen_range(1_000.0..1_000_000.0f64);
        let ts = rng.gen_range(1_000.0..1_000_000.0f64);
        let mut plan = PhasePlan::new(p);
        plan.observe_partitioned(tp as u64, Duration::from_secs(1));
        plan.observe_single_master(ts as u64, Duration::from_secs(1));
        let e = Duration::from_millis(10);
        let (tau_p, tau_s) = plan.split(e);
        let total = tau_p + tau_s;
        let diff = total.abs_diff(e);
        assert!(diff <= Duration::from_micros(2), "τp + τs must equal e (diff {diff:?})");
    }
}

#[test]
fn latency_histogram_percentiles_are_monotone() {
    let mut rng = StdRng::seed_from_u64(0xC0_0008);
    for _ in 0..100 {
        let count = rng.gen_range(1..200usize);
        let samples: Vec<u64> = (0..count).map(|_| rng.gen_range(1..5_000_000u64)).collect();
        let mut h = LatencyHistogram::new();
        for us in &samples {
            h.record(Duration::from_micros(*us));
        }
        assert!(h.percentile(10.0) <= h.percentile(50.0));
        assert!(h.percentile(50.0) <= h.percentile(99.0));
        assert!(h.percentile(99.0) <= h.max() + Duration::from_micros(1));
        assert_eq!(h.count(), samples.len() as u64);
    }
}

#[test]
fn record_lock_bit_does_not_corrupt_tid() {
    // Non-randomized companion: locking and unlocking must never change the
    // TID.
    let rec = Record::new(row([FieldValue::U64(0)]));
    rec.apply_value_thomas(row([FieldValue::U64(1)]), Tid::new(5, 77));
    let before = rec.tid();
    assert!(rec.try_lock());
    assert_eq!(rec.meta().tid, before);
    rec.unlock();
    assert_eq!(rec.tid(), before);
}
