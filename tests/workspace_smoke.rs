//! Workspace-wiring smoke test: every engine kind must be constructible
//! through the `star::prelude` facade alone and able to commit a tiny YCSB
//! burst. Catches broken re-exports and crate-graph regressions cheaply.

use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const PARTITIONS: usize = 4;
const BURST: Duration = Duration::from_millis(25);

fn tiny_cluster(nodes: usize) -> ClusterConfig {
    ClusterConfig::builder()
        .nodes(nodes)
        .partitions(PARTITIONS)
        .workers_per_node(1)
        .iteration(Duration::from_millis(5))
        .network_latency(Duration::from_micros(10))
        .build()
        .unwrap()
}

fn tiny_ycsb() -> Arc<YcsbWorkload> {
    Arc::new(YcsbWorkload::new(YcsbConfig {
        partitions: PARTITIONS,
        rows_per_partition: 50,
        cross_partition_fraction: 0.25,
        ..Default::default()
    }))
}

fn assert_burst_commits(kind: EngineKind, report: &RunReport) {
    assert!(
        report.counters.committed > 0,
        "{} committed no transactions in the smoke burst",
        kind.label()
    );
}

#[test]
fn star_engine_via_prelude() {
    let mut engine = StarEngine::new(tiny_cluster(2), tiny_ycsb()).unwrap();
    let report = engine.run_for(BURST);
    assert_burst_commits(EngineKind::Star, &report);
    assert_eq!(report.engine, EngineKind::Star.label());
    engine.verify_replica_consistency().unwrap();
}

#[test]
fn pb_occ_via_prelude() {
    let mut engine = PbOcc::new(BaselineConfig::new(tiny_cluster(2)), tiny_ycsb()).unwrap();
    let report = engine.run_for(BURST);
    assert_burst_commits(EngineKind::PbOcc, &report);
}

#[test]
fn dist_occ_via_prelude() {
    let mut engine = DistOcc::new(BaselineConfig::new(tiny_cluster(2)), tiny_ycsb()).unwrap();
    let report = engine.run_for(BURST);
    assert_burst_commits(EngineKind::DistOcc, &report);
}

#[test]
fn dist_s2pl_via_prelude() {
    let mut engine = DistS2pl::new(BaselineConfig::new(tiny_cluster(2)), tiny_ycsb()).unwrap();
    let report = engine.run_for(BURST);
    assert_burst_commits(EngineKind::DistS2pl, &report);
}

#[test]
fn calvin_via_prelude() {
    let mut engine = Calvin::new(
        BaselineConfig::new(tiny_cluster(2)),
        CalvinConfig::with_lock_managers(1),
        tiny_ycsb(),
    )
    .unwrap();
    let report = engine.run_for(BURST);
    assert_burst_commits(EngineKind::Calvin, &report);
}

#[test]
fn all_five_engines_run_through_the_engine_trait() {
    // Every engine kind must be drivable behind `Box<dyn Engine>` alone:
    // one loop, no duck typing, RunReport as the single typed result.
    let mut engines: Vec<Box<dyn Engine>> = vec![
        Box::new(StarEngine::new(tiny_cluster(2), tiny_ycsb()).unwrap()),
        Box::new(PbOcc::new(BaselineConfig::new(tiny_cluster(2)), tiny_ycsb()).unwrap()),
        Box::new(DistOcc::new(BaselineConfig::new(tiny_cluster(2)), tiny_ycsb()).unwrap()),
        Box::new(DistS2pl::new(BaselineConfig::new(tiny_cluster(2)), tiny_ycsb()).unwrap()),
        Box::new(
            Calvin::new(
                BaselineConfig::new(tiny_cluster(2)),
                CalvinConfig::with_lock_managers(1),
                tiny_ycsb(),
            )
            .unwrap(),
        ),
    ];
    for engine in &mut engines {
        let name = engine.name();
        assert_eq!(engine.report().counters.committed, 0, "{name}: pre-run report not empty");
        let report = engine.run_for(BURST);
        assert!(report.counters.committed > 0, "{name} committed nothing via the trait");
        assert_eq!(report.engine, name);
        // `report()` replays the last run's report without re-running.
        assert_eq!(engine.report().counters.committed, report.counters.committed, "{name}");
        assert_eq!(engine.counters().snapshot().committed, report.counters.committed, "{name}");
    }
}

#[test]
fn prelude_exposes_substrate_types() {
    // Compile-time wiring check for the non-engine prelude exports.
    let _spec: TableSpec = TableSpec::new("t");
    let db = DatabaseBuilder::new(1).table(TableSpec::new("t")).build();
    assert_eq!(db.held_partitions().len(), 1);
    let tid = Tid::new(1, 1);
    assert_eq!(tid.epoch(), 1 as Epoch);
    let _: Error = Error::Config("smoke".into());
    let hist = LatencyHistogram::new();
    assert_eq!(hist.count(), 0);
    let _ = CounterSnapshot::default();
    let _ = ReplicationMode::Async;
    let _ = ReplicationStrategy::Hybrid;
}
