//! End-to-end chaos-harness tests: the four Figure-7 failure scenarios
//! driven through the deterministic simulation, the determinism contract,
//! the five-engine serializability check and the checker's sensitivity to
//! corrupted histories.

use star_chaos::engines::check_baseline_engines;
use star_chaos::{check_history, plan_for_seed, run_plan, run_seed, sweep, ScenarioKind};
use star_core::FailureCase;
use std::time::Duration;

/// Seeds 0..8: two full passes over the four scenario families.
const SMOKE_SEEDS: std::ops::Range<u64> = 0..8;

#[test]
fn default_seed_set_covers_all_four_failure_cases() {
    let summary = sweep(SMOKE_SEEDS, false).unwrap();
    for outcome in &summary.outcomes {
        assert!(
            outcome.passed(),
            "seed {} ({}) failed: {:?}\nschedule: {:?}",
            outcome.seed,
            outcome.label,
            outcome.violations,
            outcome.schedule
        );
        assert!(outcome.committed > 0, "seed {} committed nothing", outcome.seed);
    }
    assert!(summary.covers_all_failure_cases(), "cases covered: {:?}", summary.cases_covered());
}

#[test]
fn each_scenario_reaches_its_designed_failure_case() {
    for seed in 0..4 {
        let kind = ScenarioKind::for_seed(seed);
        let outcome = run_seed(seed).unwrap();
        assert!(
            outcome.cases_seen.contains(&kind.expected_case()),
            "seed {seed} ({}) saw {:?}, expected {:?}",
            outcome.label,
            outcome.cases_seen,
            kind.expected_case()
        );
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    for seed in [0u64, 1, 2, 3, 13] {
        let plan_a = plan_for_seed(seed);
        let plan_b = plan_for_seed(seed);
        assert_eq!(plan_a.schedule, plan_b.schedule, "seed {seed}: schedules diverged");
        let a = run_plan(&plan_a).unwrap();
        let b = run_plan(&plan_b).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint, "seed {seed}: histories diverged");
        assert_eq!(a.committed, b.committed, "seed {seed}: commit counts diverged");
        assert_eq!(a.cases_seen, b.cases_seen, "seed {seed}: failure cases diverged");
        assert_eq!(a.passed(), b.passed(), "seed {seed}: verdicts diverged");
    }
}

#[test]
fn case4_recovers_from_checkpoint_plus_wal() {
    // Seed 3 is the TotalLossDuringCheckpoint family: the run must end
    // unavailable and the disk-recovery path must rebuild the oracle's
    // exact final state from the fuzzy checkpoint and the surviving WALs.
    let outcome = run_seed(3).unwrap();
    assert!(outcome.passed(), "{:?}", outcome.violations);
    assert!(outcome.cases_seen.contains(&FailureCase::NothingRemains));
    let disk = outcome.disk_recovery.expect("case 4 must exercise disk recovery");
    assert!(disk.checkpoint_records > 0, "checkpoint was empty");
    assert!(disk.log_entries_replayed > 0, "no WAL entries were replayed");
    assert!(disk.records_verified > 0, "nothing was verified against the oracle");
    assert!(
        disk.log_entries_skipped > 0,
        "the reverted epoch's WAL entries should exist and be skipped"
    );
}

#[test]
fn all_five_engines_pass_the_serializability_checker() {
    // STAR, via a fault-injected chaos run…
    let star = run_seed(0).unwrap();
    assert!(star.passed(), "STAR: {:?}", star.violations);
    // …and the four baselines via recorded wall-clock runs.
    let baselines = check_baseline_engines(7, Duration::from_millis(30)).unwrap();
    assert_eq!(baselines.len(), 4);
    for (label, report) in baselines {
        assert!(report.txns > 0, "{label} committed nothing");
        assert!(report.is_serializable(), "{label}: {}", report.violation.unwrap());
    }
}

#[test]
fn checker_rejects_tampered_histories() {
    // Take a genuine serializable history from a chaos run, then corrupt it
    // in ways that mimic real protocol bugs; the checker must flag each.
    let plan = plan_for_seed(0);
    let outcome = run_plan(&plan).unwrap();
    assert!(outcome.passed());

    // Rebuild the history by re-running with a recorder we keep.
    let workload = std::sync::Arc::new(star_core::testing::KvWorkload {
        partitions: 4,
        rows_per_partition: 16,
        cross_partition_fraction: 0.3,
    });
    let mut engine = star_core::StarEngine::new(plan.config.clone(), workload).unwrap();
    let recorder = std::sync::Arc::new(star_core::HistoryRecorder::new());
    engine.set_history_recorder(recorder.clone());
    for _ in 0..3 {
        engine.run_iteration_stepped(8, 8);
    }
    let history = recorder.committed();
    assert!(check_history(&history).is_serializable());
    let reader = history
        .iter()
        .position(|t| t.reads.iter().any(|r| r.tid != star_common::Tid::ZERO))
        .expect("some transaction must read a written version");

    // 1. A read observing a version nobody wrote (phantom / reverted data).
    let mut tampered = history.clone();
    tampered[reader].reads[0].tid = star_common::Tid::new(999, 1);
    assert!(!check_history(&tampered).is_serializable(), "phantom read versions must be rejected");

    // 2. A stale read: rewind an observed version to the one before it.
    let mut tampered = history.clone();
    let (victim, read_idx, old_tid) = tampered
        .iter()
        .enumerate()
        .find_map(|(i, t)| {
            t.reads.iter().enumerate().find_map(|(j, r)| {
                // Find a read of a version that itself overwrote an older
                // version by the same record's history.
                let earlier = history.iter().find(|w| {
                    w.tid < r.tid
                        && w.writes.iter().any(|wr| {
                            (wr.table, wr.partition, wr.key) == (r.table, r.partition, r.key)
                        })
                })?;
                Some((i, j, earlier.tid))
            })
        })
        .expect("a multi-version record must exist");
    tampered[victim].reads[read_idx].tid = old_tid;
    assert!(!check_history(&tampered).is_serializable(), "stale reads must be rejected");
}
