//! Cross-crate integration tests: the STAR engine and every baseline driving
//! the real YCSB and TPC-C workloads end to end.

use star::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn small_cluster(nodes: usize, partitions: usize) -> ClusterConfig {
    ClusterConfig::builder()
        .nodes(nodes)
        .partitions(partitions)
        .workers_per_node(2)
        .iteration(Duration::from_millis(5))
        .network_latency(Duration::from_micros(20))
        .build()
        .unwrap()
}

fn ycsb(partitions: usize, cross_pct: f64) -> Arc<YcsbWorkload> {
    Arc::new(YcsbWorkload::new(YcsbConfig {
        partitions,
        rows_per_partition: 300,
        cross_partition_fraction: cross_pct / 100.0,
        ..Default::default()
    }))
}

fn tpcc(warehouses: usize, cross_pct: f64) -> Arc<TpccWorkload> {
    Arc::new(TpccWorkload::new(TpccConfig {
        warehouses,
        districts_per_warehouse: 3,
        customers_per_district: 20,
        items: 100,
        cross_partition_fraction: cross_pct / 100.0,
        ..Default::default()
    }))
}

#[test]
fn star_runs_ycsb_end_to_end() {
    let mut engine = StarEngine::new(small_cluster(4, 8), ycsb(8, 10.0)).unwrap();
    let report = engine.run_for(Duration::from_millis(60));
    assert!(report.counters.committed > 0);
    assert!(report.throughput > 0.0);
    engine.verify_replica_consistency().unwrap();
}

#[test]
fn star_runs_tpcc_end_to_end() {
    let mut engine = StarEngine::new(small_cluster(4, 4), tpcc(4, 12.5)).unwrap();
    let report = engine.run_for(Duration::from_millis(80));
    assert!(report.counters.committed > 0, "no TPC-C transactions committed");
    engine.verify_replica_consistency().unwrap();
    // TPC-C occasionally aborts NewOrders with invalid items; those must be
    // counted as user aborts, not concurrency-control aborts.
    assert!(report.counters.user_aborted < report.counters.committed);
}

#[test]
fn star_hybrid_replication_ships_fewer_bytes_than_value_replication_on_tpcc() {
    // The Section 5 claim behind Figure 15(a): operation replication in the
    // partitioned phase cuts replication bandwidth substantially.
    let value_config = small_cluster(4, 4)
        .to_builder()
        .replication_strategy(ReplicationStrategy::Value)
        .build()
        .unwrap();
    let hybrid_config = small_cluster(4, 4)
        .to_builder()
        .replication_strategy(ReplicationStrategy::Hybrid)
        .build()
        .unwrap();

    let mut value_engine = StarEngine::new(value_config, tpcc(4, 10.0)).unwrap();
    let value_report = value_engine.run_for(Duration::from_millis(100));
    let mut hybrid_engine = StarEngine::new(hybrid_config, tpcc(4, 10.0)).unwrap();
    let hybrid_report = hybrid_engine.run_for(Duration::from_millis(100));

    let value_per_txn = value_report.counters.replication_bytes as f64
        / value_report.counters.committed.max(1) as f64;
    let hybrid_per_txn = hybrid_report.counters.replication_bytes as f64
        / hybrid_report.counters.committed.max(1) as f64;
    assert!(
        hybrid_per_txn < value_per_txn,
        "hybrid replication should ship fewer bytes per transaction ({hybrid_per_txn:.0} vs {value_per_txn:.0})"
    );
}

#[test]
fn all_baselines_run_ycsb() {
    let config = BaselineConfig::new(small_cluster(4, 8));
    let wl = ycsb(8, 20.0);

    let mut pb = PbOcc::new(BaselineConfig::new(small_cluster(2, 8)), wl.clone()).unwrap();
    let report = pb.run_for(Duration::from_millis(40));
    assert!(report.counters.committed > 0, "PB. OCC committed nothing");

    let mut docc = DistOcc::new(config.clone(), wl.clone()).unwrap();
    let report = docc.run_for(Duration::from_millis(40));
    assert!(report.counters.committed > 0, "Dist. OCC committed nothing");

    let mut s2pl = DistS2pl::new(config.clone(), wl.clone()).unwrap();
    let report = s2pl.run_for(Duration::from_millis(40));
    assert!(report.counters.committed > 0, "Dist. S2PL committed nothing");

    let mut calvin = Calvin::new(config, CalvinConfig::with_lock_managers(2), wl).unwrap();
    let report = calvin.run_for(Duration::from_millis(40));
    assert!(report.counters.committed > 0, "Calvin committed nothing");
}

#[test]
fn all_baselines_run_tpcc() {
    let config = BaselineConfig::new(small_cluster(4, 4));
    let wl = tpcc(4, 12.5);

    let mut pb = PbOcc::new(BaselineConfig::new(small_cluster(2, 4)), wl.clone()).unwrap();
    assert!(pb.run_for(Duration::from_millis(40)).counters.committed > 0);

    let mut docc = DistOcc::new(config.clone(), wl.clone()).unwrap();
    assert!(docc.run_for(Duration::from_millis(40)).counters.committed > 0);

    let mut s2pl = DistS2pl::new(config.clone(), wl.clone()).unwrap();
    assert!(s2pl.run_for(Duration::from_millis(40)).counters.committed > 0);

    let mut calvin = Calvin::new(config, CalvinConfig::default(), wl).unwrap();
    assert!(calvin.run_for(Duration::from_millis(40)).counters.committed > 0);
}

#[test]
fn analytical_model_matches_paper_headline_numbers() {
    // Figure 3 / Section 6.3 sanity: with P=10% STAR's predicted speedup over
    // a single node at n=16 is 6.4x, and STAR only beats partitioning-based
    // systems when K > n.
    let model = AnalyticalModel::new(0.10, 8.0);
    assert!((model.speedup_over_single_node(16) - 6.4).abs() < 1e-9);
    assert!(model.improvement_over_partitioning(4) > 1.0); // K=8 > n=4
    let cheap = AnalyticalModel::new(0.10, 2.0);
    assert!(cheap.improvement_over_partitioning(4) < 1.0); // K=2 < n=4
}

#[test]
fn engine_labels_are_stable_for_figures() {
    assert_eq!(EngineKind::Star.label(), "STAR");
    assert_eq!(EngineKind::DistS2pl.label(), "Dist. S2PL");
}
